// Simulated cluster network with typed fault injection.
//
// Nodes communicate only through this class, which decides reachability
// from the current partition layout and advances the shared virtual clock
// by the configured message costs.  Faults follow the model of Section 1.1
// (pause-crash nodes, fair-lossy links): beyond clean partitions and
// crashes, seeded per-link probabilities can drop, delay or duplicate
// individual messages at delivery time.  All randomness flows through one
// seeded generator, so the same seed and fault schedule reproduce a
// byte-identical run; with no link faults configured the generator is
// never consulted and behaviour matches the fault-free network exactly.
//
// Fault operations are typed values (`fault::Partition`, `fault::Crash`,
// `fault::Restart`, `fault::Heal`, `fault::SetLinkFaults[On]`) applied via
// `apply()`, which returns the previous `Topology` so callers can restore
// it.  The legacy `partition()/heal()/crash()/recover()` methods remain as
// thin shims over `apply()`.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/cost_model.h"
#include "sim/fault_plan.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace dedisys {

/// Observer of topology changes (the GMS subscribes to drive view changes).
class TopologyListener {
 public:
  virtual ~TopologyListener() = default;
  virtual void on_topology_changed() = 0;
};

/// Value snapshot of the connectivity state: partition-group assignment and
/// the set of alive nodes.  `apply()` returns the previous topology so a
/// fault can be undone by applying the returned value.
struct Topology {
  std::unordered_map<NodeId, int> group_of;
  std::unordered_set<NodeId> alive;
};

class SimNetwork {
 public:
  /// Per-message delivery decision for one directed link.
  struct Delivery {
    bool delivered = true;      ///< false: the message is lost this attempt
    std::size_t copies = 1;     ///< >1: duplicated in flight
    SimDuration extra_delay = 0;///< added to the nominal link latency
  };

  /// Counters of injected faults and per-message fault outcomes.
  struct FaultStats {
    std::uint64_t messages_dropped = 0;
    std::uint64_t messages_duplicated = 0;
    std::uint64_t messages_delayed = 0;
    std::uint64_t partitions = 0;
    std::uint64_t heals = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
  };

  SimNetwork(SimClock& clock, CostModel cost) : clock_(clock), cost_(cost) {}

  SimClock& clock() { return clock_; }
  const CostModel& cost() const { return cost_; }

  // -- membership ---------------------------------------------------------

  /// Registers a node; newly added nodes are alive and in the sole
  /// partition group unless a partition is already in force.
  void add_node(NodeId node) {
    nodes_.push_back(node);
    group_of_[node] = 0;
    alive_.insert(node);
  }

  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }
  [[nodiscard]] bool is_alive(NodeId node) const {
    return alive_.count(node) != 0;
  }

  // -- typed fault API ------------------------------------------------------

  /// Splits the cluster into the given groups.  Nodes not mentioned keep
  /// their previous group.  Notifies topology listeners.
  Topology apply(const fault::Partition& op) {
    Topology previous = topology();
    int next_group = 1;
    for (const auto& g : op.groups) {
      for (NodeId n : g) group_of_[n] = next_group;
      ++next_group;
    }
    ++fault_stats_.partitions;
    notify();
    return previous;
  }

  /// Repairs all link failures: every alive node is mutually reachable.
  Topology apply(const fault::Heal& /*op*/) {
    Topology previous = topology();
    for (auto& [node, group] : group_of_) group = 0;
    ++fault_stats_.heals;
    notify();
    return previous;
  }

  /// Pause-crash of a server node (Section 1.1): unreachable until restart.
  Topology apply(const fault::Crash& op) {
    Topology previous = topology();
    alive_.erase(op.node);
    ++fault_stats_.crashes;
    notify();
    return previous;
  }

  /// Brings a crashed node back; it rejoins its partition group.  State
  /// recovery is the caller's concern (Cluster::restart_node wires it).
  Topology apply(const fault::Restart& op) {
    Topology previous = topology();
    alive_.insert(op.node);
    ++fault_stats_.restarts;
    notify();
    return previous;
  }

  /// Sets the cluster-wide default link fault probabilities.
  Topology apply(const fault::SetLinkFaults& op) {
    Topology previous = topology();
    default_faults_ = op.faults;
    refresh_faults_active();
    return previous;
  }

  /// Overrides one directed link's fault probabilities.
  Topology apply(const fault::SetLinkFaultsOn& op) {
    Topology previous = topology();
    link_faults_[{op.from.value(), op.to.value()}] = op.faults;
    refresh_faults_active();
    return previous;
  }

  /// Applies any typed fault operation.
  Topology apply(const fault::Op& op) {
    return std::visit([this](const auto& concrete) { return apply(concrete); },
                      op);
  }

  /// Restores a previously returned topology snapshot.
  Topology apply(const Topology& target) {
    Topology previous = topology();
    group_of_ = target.group_of;
    alive_ = target.alive;
    notify();
    return previous;
  }

  /// Current connectivity snapshot.
  [[nodiscard]] Topology topology() const { return {group_of_, alive_}; }

  /// Clears every configured link fault (default and per-link overrides).
  void clear_link_faults() {
    default_faults_ = LinkFaults{};
    link_faults_.clear();
    refresh_faults_active();
  }

  // -- seeded per-message faults --------------------------------------------

  /// Seeds the generator behind every probabilistic delivery decision.
  void seed_faults(std::uint64_t seed) { rng_ = Rng(seed); }

  /// True when any link carries non-zero fault probabilities.  The fast
  /// path through delivery_verdict consults no randomness while false, so
  /// fault-free runs are bit-identical to the plain network.
  [[nodiscard]] bool faults_active() const { return faults_active_; }

  /// Effective fault probabilities of the directed link `from -> to`
  /// (per-link override when present, else the cluster-wide default).
  [[nodiscard]] const LinkFaults& effective_faults(NodeId from,
                                                   NodeId to) const {
    auto it = link_faults_.find({from.value(), to.value()});
    return it == link_faults_.end() ? default_faults_ : it->second;
  }

  /// Draws this message's fate on the directed link `from -> to`.  Local
  /// delivery (from == to) is never faulted.  Consumes randomness only
  /// while faults are active.
  Delivery delivery_verdict(NodeId from, NodeId to) {
    if (!faults_active_ || from == to) return Delivery{};
    const LinkFaults& f = effective_faults(from, to);
    if (!f.any()) return Delivery{};
    Delivery verdict;
    if (f.drop > 0.0 && rng_.chance(f.drop)) {
      verdict.delivered = false;
      verdict.copies = 0;
      ++fault_stats_.messages_dropped;
      return verdict;
    }
    if (f.duplicate > 0.0 && rng_.chance(f.duplicate)) {
      verdict.copies = 2;
      ++fault_stats_.messages_duplicated;
    }
    if (f.delay_prob > 0.0 && f.delay > 0 && rng_.chance(f.delay_prob)) {
      verdict.extra_delay = f.delay;
      ++fault_stats_.messages_delayed;
    }
    return verdict;
  }

  /// Shared generator for fault-related decisions outside this class
  /// (e.g. multicast receiver reordering in the GCS).
  Rng& fault_rng() { return rng_; }

  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

  // -- reachability -------------------------------------------------------

  [[nodiscard]] bool reachable(NodeId from, NodeId to) const {
    if (!is_alive(from) || !is_alive(to)) return false;
    return group_of_.at(from) == group_of_.at(to);
  }

  /// All alive nodes reachable from `from`, including `from` itself.
  [[nodiscard]] std::vector<NodeId> reachable_set(NodeId from) const {
    std::vector<NodeId> out;
    if (!is_alive(from)) return out;
    for (NodeId n : nodes_) {
      if (reachable(from, n)) out.push_back(n);
    }
    return out;
  }

  [[nodiscard]] bool fully_connected() const {
    for (NodeId n : nodes_) {
      if (!is_alive(n)) return false;
      if (group_of_.at(n) != group_of_.at(nodes_.front())) return false;
    }
    return true;
  }

  // -- message costs --------------------------------------------------------

  /// Charges the cost of one point-to-point message; returns false (message
  /// lost) when the destination is unreachable.
  bool charge_rpc(NodeId from, NodeId to) {
    if (!reachable(from, to)) return false;
    if (from != to) clock_.advance(cost_.rpc_latency);
    return true;
  }

  /// Charges a synchronous acked multicast from `from` to `receivers`
  /// (self excluded from per-receiver cost); returns the number reached.
  std::size_t charge_multicast(NodeId from,
                               const std::vector<NodeId>& receivers) {
    std::size_t reached = 0;
    for (NodeId r : receivers) {
      if (r != from && reachable(from, r)) ++reached;
    }
    if (reached > 0) {
      clock_.advance(cost_.multicast_base +
                     static_cast<SimDuration>(reached) *
                         cost_.multicast_per_receiver);
    }
    return reached;
  }

  // -- listeners ------------------------------------------------------------

  void subscribe(TopologyListener* listener) { listeners_.push_back(listener); }
  void unsubscribe(TopologyListener* listener) {
    listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                     listeners_.end());
  }

 private:
  void notify() {
    for (auto* l : listeners_) l->on_topology_changed();
  }

  void refresh_faults_active() {
    faults_active_ = default_faults_.any();
    for (const auto& [link, f] : link_faults_) {
      if (faults_active_) break;
      faults_active_ = f.any();
    }
  }

  SimClock& clock_;
  CostModel cost_;
  std::vector<NodeId> nodes_;
  std::unordered_map<NodeId, int> group_of_;
  std::unordered_set<NodeId> alive_;
  std::vector<TopologyListener*> listeners_;

  Rng rng_{0x5DEDC0DEULL};
  bool faults_active_ = false;
  LinkFaults default_faults_;
  /// Directed-link overrides, ordered so iteration is deterministic.
  std::map<std::pair<std::uint64_t, std::uint64_t>, LinkFaults> link_faults_;
  FaultStats fault_stats_;
};

}  // namespace dedisys
