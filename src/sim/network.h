// Simulated cluster network with typed fault injection.
//
// Nodes communicate only through this class, which decides reachability
// from the current partition layout and advances the shared virtual clock
// by the configured message costs.  Faults follow the model of Section 1.1
// (pause-crash nodes, fair-lossy links): beyond clean partitions and
// crashes, seeded per-link probabilities can drop, delay or duplicate
// individual messages at delivery time.  All randomness flows through one
// seeded generator, so the same seed and fault schedule reproduce a
// byte-identical run; with no link faults configured the generator is
// never consulted and behaviour matches the fault-free network exactly.
//
// Fault operations are typed values (`fault::Partition`, `fault::Crash`,
// `fault::Restart`, `fault::Heal`, `fault::SetLinkFaults[On]`) applied via
// `apply()`, which returns the previous `Topology` so callers can restore
// it.  The legacy `partition()/heal()/crash()/recover()` methods remain as
// thin shims over `apply()`.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "runtime/runtime.h"
#include "sim/cost_model.h"
#include "sim/fault_plan.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace dedisys {

// TopologyListener and Delivery live at the runtime seam
// (src/runtime/runtime.h); SimNetwork implements the sim side of both.

/// Value snapshot of the connectivity state: partition-group assignment,
/// the set of alive nodes, and any one-way link cuts.  `apply()` returns
/// the previous topology so a fault can be undone by applying the returned
/// value.
struct Topology {
  std::unordered_map<NodeId, int> group_of;
  std::unordered_set<NodeId> alive;
  std::set<std::pair<std::uint64_t, std::uint64_t>> cut_links;
};

class SimNetwork {
 public:
  /// Per-message delivery decision for one directed link (the runtime-seam
  /// value type; kept as a member alias for existing callers).
  using Delivery = dedisys::Delivery;

  /// Counters of injected faults and per-message fault outcomes.
  struct FaultStats {
    std::uint64_t messages_dropped = 0;
    std::uint64_t messages_duplicated = 0;
    std::uint64_t messages_delayed = 0;
    std::uint64_t messages_relayed = 0;  ///< delivered around a one-way cut
    std::uint64_t partitions = 0;
    std::uint64_t heals = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t asym_cuts = 0;
    std::uint64_t link_heals = 0;
    std::uint64_t flaps = 0;
    std::uint64_t slow_changes = 0;
    std::uint64_t skew_changes = 0;
  };

  SimNetwork(SimClock& clock, CostModel cost) : clock_(clock), cost_(cost) {}

  SimClock& clock() { return clock_; }
  const CostModel& cost() const { return cost_; }

  // -- membership ---------------------------------------------------------

  /// Registers a node; newly added nodes are alive and in the sole
  /// partition group unless a partition is already in force.
  void add_node(NodeId node) {
    nodes_.push_back(node);
    group_of_[node] = 0;
    alive_.insert(node);
  }

  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }
  [[nodiscard]] bool is_alive(NodeId node) const {
    return alive_.count(node) != 0;
  }

  // -- typed fault API ------------------------------------------------------

  /// Splits the cluster into the given groups.  Nodes not mentioned keep
  /// their previous group.  Notifies topology listeners.
  Topology apply(const fault::Partition& op) {
    Topology previous = topology();
    int next_group = 1;
    for (const auto& g : op.groups) {
      for (NodeId n : g) group_of_[n] = next_group;
      ++next_group;
    }
    ++fault_stats_.partitions;
    notify();
    return previous;
  }

  /// Repairs all link failures — partition groups and one-way cuts alike:
  /// every alive node is mutually reachable afterwards.
  Topology apply(const fault::Heal& /*op*/) {
    Topology previous = topology();
    for (auto& [node, group] : group_of_) group = 0;
    cut_links_.clear();
    asym_active_ = false;
    ++fault_stats_.heals;
    notify();
    return previous;
  }

  /// Cuts the given directed links (gray failure: asymmetric partition).
  Topology apply(const fault::AsymPartition& op) {
    Topology previous = topology();
    for (const OneWayCut& c : op.cuts) {
      cut_links_.insert({c.from.value(), c.to.value()});
    }
    asym_active_ = !cut_links_.empty();
    ++fault_stats_.asym_cuts;
    notify();
    return previous;
  }

  /// Repairs directed link cuts; an empty list repairs all of them.
  Topology apply(const fault::HealLinks& op) {
    Topology previous = topology();
    if (op.cuts.empty()) {
      cut_links_.clear();
    } else {
      for (const OneWayCut& c : op.cuts) {
        cut_links_.erase({c.from.value(), c.to.value()});
      }
    }
    asym_active_ = !cut_links_.empty();
    ++fault_stats_.link_heals;
    notify();
    return previous;
  }

  /// Immediate effect of a flap: both directions of the link go down.  The
  /// FaultEngine schedules the subsequent up/down toggles.
  Topology apply(const fault::Flap& op) {
    ++fault_stats_.flaps;
    Topology previous =
        apply(fault::AsymPartition{{{op.a, op.b}, {op.b, op.a}}});
    --fault_stats_.asym_cuts;  // counted as a flap, not a plain cut
    return previous;
  }

  /// Slow-but-alive node: message legs touching the node cost `multiplier`
  /// times their nominal duration.  Not a topology change — the node stays
  /// in every view; views must NOT be recomputed (that is the gray part).
  Topology apply(const fault::SlowNode& op) {
    Topology previous = topology();
    if (op.multiplier > 1.0) {
      slow_factor_[op.node.value()] = op.multiplier;
    } else {
      slow_factor_.erase(op.node.value());
    }
    slow_active_ = !slow_factor_.empty();
    ++fault_stats_.slow_changes;
    return previous;
  }

  /// Per-replica clock skew: `local_now(node)` reads `offset` ahead of the
  /// shared clock.  Not a topology change.
  Topology apply(const fault::ClockSkew& op) {
    Topology previous = topology();
    if (op.offset != 0) {
      skew_[op.node.value()] = op.offset;
    } else {
      skew_.erase(op.node.value());
    }
    ++fault_stats_.skew_changes;
    return previous;
  }

  /// Pause-crash of a server node (Section 1.1): unreachable until restart.
  Topology apply(const fault::Crash& op) {
    Topology previous = topology();
    alive_.erase(op.node);
    ++fault_stats_.crashes;
    notify();
    return previous;
  }

  /// Brings a crashed node back; it rejoins its partition group.  State
  /// recovery is the caller's concern (Cluster::restart_node wires it).
  Topology apply(const fault::Restart& op) {
    Topology previous = topology();
    alive_.insert(op.node);
    ++fault_stats_.restarts;
    notify();
    return previous;
  }

  /// Sets the cluster-wide default link fault probabilities.
  Topology apply(const fault::SetLinkFaults& op) {
    Topology previous = topology();
    default_faults_ = op.faults;
    refresh_faults_active();
    return previous;
  }

  /// Overrides one directed link's fault probabilities.
  Topology apply(const fault::SetLinkFaultsOn& op) {
    Topology previous = topology();
    link_faults_[{op.from.value(), op.to.value()}] = op.faults;
    refresh_faults_active();
    return previous;
  }

  /// Applies any typed fault operation.
  Topology apply(const fault::Op& op) {
    return std::visit([this](const auto& concrete) { return apply(concrete); },
                      op);
  }

  /// Restores a previously returned topology snapshot.
  Topology apply(const Topology& target) {
    Topology previous = topology();
    group_of_ = target.group_of;
    alive_ = target.alive;
    cut_links_ = target.cut_links;
    asym_active_ = !cut_links_.empty();
    notify();
    return previous;
  }

  /// Current connectivity snapshot.
  [[nodiscard]] Topology topology() const {
    return {group_of_, alive_, cut_links_};
  }

  /// Clears every configured link fault (default and per-link overrides).
  void clear_link_faults() {
    default_faults_ = LinkFaults{};
    link_faults_.clear();
    refresh_faults_active();
  }

  // -- seeded per-message faults --------------------------------------------

  /// Seeds the generator behind every probabilistic delivery decision.
  void seed_faults(std::uint64_t seed) { rng_ = Rng(seed); }

  /// True when any link carries non-zero fault probabilities.  The fast
  /// path through delivery_verdict consults no randomness while false, so
  /// fault-free runs are bit-identical to the plain network.
  [[nodiscard]] bool faults_active() const { return faults_active_; }

  /// Effective fault probabilities of the directed link `from -> to`
  /// (per-link override when present, else the cluster-wide default).
  [[nodiscard]] const LinkFaults& effective_faults(NodeId from,
                                                   NodeId to) const {
    auto it = link_faults_.find({from.value(), to.value()});
    return it == link_faults_.end() ? default_faults_ : it->second;
  }

  /// Draws this message's fate on the directed link `from -> to`.  Local
  /// delivery (from == to) is never faulted.  Consumes randomness only
  /// while faults are active.
  Delivery delivery_verdict(NodeId from, NodeId to) {
    if (!faults_active_ || from == to) return Delivery{};
    const LinkFaults& f = effective_faults(from, to);
    if (!f.any()) return Delivery{};
    Delivery verdict;
    if (f.drop > 0.0 && rng_.chance(f.drop)) {
      verdict.delivered = false;
      verdict.copies = 0;
      ++fault_stats_.messages_dropped;
      return verdict;
    }
    if (f.duplicate > 0.0 && rng_.chance(f.duplicate)) {
      verdict.copies = 2;
      ++fault_stats_.messages_duplicated;
    }
    if (f.delay_prob > 0.0 && f.delay > 0 && rng_.chance(f.delay_prob)) {
      verdict.extra_delay = f.delay;
      ++fault_stats_.messages_delayed;
    }
    return verdict;
  }

  /// Shared generator for fault-related decisions outside this class
  /// (e.g. multicast receiver reordering in the GCS).
  Rng& fault_rng() { return rng_; }

  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

  // -- reachability -------------------------------------------------------

  /// Direct deliverability of the link `from -> to`: both alive, same
  /// partition group and the directed link not cut.
  [[nodiscard]] bool link_open(NodeId from, NodeId to) const {
    if (!is_alive(from) || !is_alive(to)) return false;
    if (group_of_.at(from) != group_of_.at(to)) return false;
    return !asym_active_ ||
           cut_links_.count({from.value(), to.value()}) == 0;
  }

  /// Deliverability of `from -> to`, routing around one-way cuts: true when
  /// the direct link is open or a directed path of open links exists (a
  /// message resent forever along an overlay is eventually delivered,
  /// Section 1.1).  With no cuts active this is the plain group test.
  [[nodiscard]] bool reachable(NodeId from, NodeId to) const {
    if (link_open(from, to)) return true;
    return asym_active_ && hops(from, to) > 0;
  }

  /// Shortest directed path length from `from` to `to` over open links
  /// (1 = direct); 0 when undeliverable.  BFS in node-registration order,
  /// so results are deterministic.
  [[nodiscard]] std::size_t hops(NodeId from, NodeId to) const {
    if (from == to) return is_alive(from) ? 1 : 0;
    if (link_open(from, to)) return 1;
    if (!asym_active_ || !is_alive(from) || !is_alive(to)) return 0;
    std::unordered_map<std::uint64_t, std::size_t> dist;
    dist[from.value()] = 0;
    std::deque<NodeId> frontier{from};
    while (!frontier.empty()) {
      const NodeId at = frontier.front();
      frontier.pop_front();
      const std::size_t d = dist[at.value()];
      for (NodeId n : nodes_) {
        if (dist.count(n.value()) != 0 || !link_open(at, n)) continue;
        if (n == to) return d + 1;  // d edges to `at`, one more to `to`
        dist[n.value()] = d + 1;
        frontier.push_back(n);
      }
    }
    return 0;
  }

  /// All alive nodes this node can deliver to (routing included), with
  /// `from` itself.  NOTE: under one-way cuts this set is asymmetric — use
  /// `mutually_reachable_set` for anything membership- or quorum-like.
  [[nodiscard]] std::vector<NodeId> reachable_set(NodeId from) const {
    std::vector<NodeId> out;
    if (!is_alive(from)) return out;
    for (NodeId n : nodes_) {
      if (reachable(from, n)) out.push_back(n);
    }
    return out;
  }

  /// All alive nodes with an open *direct* link from `from` (plus itself):
  /// the naive "who can I send to" set the pre-gray GMS derived views
  /// from.  Under a one-way cut it elects split-brain primaries — kept
  /// only for the legacy_unidirectional_views regression pin.
  [[nodiscard]] std::vector<NodeId> direct_reachable_set(NodeId from) const {
    std::vector<NodeId> out;
    if (!is_alive(from)) return out;
    for (NodeId n : nodes_) {
      if (n == from || link_open(from, n)) out.push_back(n);
    }
    return out;
  }

  /// Nodes that can exchange messages with `from` in BOTH directions
  /// (the strongly-connected component of the routed delivery graph).
  /// This is the correct basis for view formation and primary election:
  /// a one-way partition must not let a node count members it can reach
  /// but cannot hear from.  Identical to `reachable_set` when no one-way
  /// cuts are active.
  [[nodiscard]] std::vector<NodeId> mutually_reachable_set(NodeId from) const {
    if (!asym_active_) return reachable_set(from);
    std::vector<NodeId> out;
    if (!is_alive(from)) return out;
    for (NodeId n : nodes_) {
      if (reachable(from, n) && reachable(n, from)) out.push_back(n);
    }
    return out;
  }

  [[nodiscard]] bool mutually_reachable(NodeId a, NodeId b) const {
    return reachable(a, b) && reachable(b, a);
  }

  [[nodiscard]] bool fully_connected() const {
    for (NodeId n : nodes_) {
      if (!is_alive(n)) return false;
      if (group_of_.at(n) != group_of_.at(nodes_.front())) return false;
    }
    return cut_links_.empty();
  }

  // -- gray-failure state ---------------------------------------------------

  /// Slowdown multiplier of a node (1.0 unless a fault::SlowNode is live).
  [[nodiscard]] double slow_factor(NodeId node) const {
    if (!slow_active_) return 1.0;
    auto it = slow_factor_.find(node.value());
    return it == slow_factor_.end() ? 1.0 : it->second;
  }

  /// True while any node carries a slowdown multiplier.
  [[nodiscard]] bool slow_active() const { return slow_active_; }

  /// Scales a duration by the slowest endpoint of a message leg.  Returns
  /// the duration untouched (no float math) while no slow node exists, so
  /// fault-free runs stay byte-identical.
  [[nodiscard]] SimDuration scaled(SimDuration d, NodeId a, NodeId b) const {
    if (!slow_active_) return d;
    return scaled_cost(d, std::max(slow_factor(a), slow_factor(b)));
  }

  /// Cost of one point-to-point message `from -> to`: nominal latency times
  /// the routed hop count (relaying around a one-way cut pays per hop),
  /// scaled by the slowest endpoint.
  [[nodiscard]] SimDuration rpc_cost(NodeId from, NodeId to) const {
    SimDuration base = cost_.rpc_latency;
    if (asym_active_ && from != to && !link_open(from, to)) {
      const std::size_t h = hops(from, to);
      if (h > 1) base *= static_cast<SimDuration>(h);
    }
    return scaled(base, from, to);
  }

  /// Clock-skew offset of a node (fault::ClockSkew; 0 when unskewed).
  [[nodiscard]] SimDuration skew_of(NodeId node) const {
    auto it = skew_.find(node.value());
    return it == skew_.end() ? 0 : it->second;
  }

  /// The node's local notion of now: the shared virtual clock plus its
  /// skew offset.  Feeds per-replica update stamps (freshness estimation),
  /// never the event schedule itself.
  [[nodiscard]] SimTime local_now(NodeId node) const {
    return clock_.now() + skew_of(node);
  }

  /// Directed links currently cut (asymmetric partitions, flap downs).
  [[nodiscard]] const std::set<std::pair<std::uint64_t, std::uint64_t>>&
  cut_links() const {
    return cut_links_;
  }

  // -- message costs --------------------------------------------------------

  /// Charges the cost of one point-to-point message; returns false (message
  /// lost) when the destination is unreachable.  Relayed delivery around a
  /// one-way cut pays per hop; slow endpoints scale the latency.
  bool charge_rpc(NodeId from, NodeId to) {
    if (!reachable(from, to)) return false;
    if (from != to) {
      if (asym_active_ && !link_open(from, to)) ++fault_stats_.messages_relayed;
      clock_.advance(rpc_cost(from, to));
    }
    return true;
  }

  /// Charges a synchronous acked multicast from `from` to `receivers`
  /// (self excluded from per-receiver cost); returns the number reached.
  std::size_t charge_multicast(NodeId from,
                               const std::vector<NodeId>& receivers) {
    std::size_t reached = 0;
    SimDuration per_receiver = 0;
    for (NodeId r : receivers) {
      if (r == from || !reachable(from, r)) continue;
      ++reached;
      SimDuration leg = cost_.multicast_per_receiver;
      if (asym_active_ && !link_open(from, r)) {
        // Relay detour: extra point-to-point hops beyond the direct leg.
        const std::size_t h = hops(from, r);
        if (h > 1) {
          leg += static_cast<SimDuration>(h - 1) * cost_.rpc_latency;
          ++fault_stats_.messages_relayed;
        }
      }
      per_receiver += scaled(leg, from, r);
    }
    if (reached > 0) {
      clock_.advance(scaled(cost_.multicast_base, from, from) + per_receiver);
    }
    return reached;
  }

  // -- listeners ------------------------------------------------------------

  void subscribe(TopologyListener* listener) { listeners_.push_back(listener); }
  void unsubscribe(TopologyListener* listener) {
    listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                     listeners_.end());
  }

 private:
  void notify() {
    for (auto* l : listeners_) l->on_topology_changed();
  }

  void refresh_faults_active() {
    faults_active_ = default_faults_.any();
    for (const auto& [link, f] : link_faults_) {
      if (faults_active_) break;
      faults_active_ = f.any();
    }
  }

  SimClock& clock_;
  CostModel cost_;
  std::vector<NodeId> nodes_;
  std::unordered_map<NodeId, int> group_of_;
  std::unordered_set<NodeId> alive_;
  std::vector<TopologyListener*> listeners_;

  Rng rng_{0x5DEDC0DEULL};
  bool faults_active_ = false;
  LinkFaults default_faults_;
  /// Directed-link overrides, ordered so iteration is deterministic.
  std::map<std::pair<std::uint64_t, std::uint64_t>, LinkFaults> link_faults_;
  FaultStats fault_stats_;

  // Gray-failure state.  All maps are ordered, so iteration (and therefore
  // every derived schedule) is deterministic; the *_active_ flags keep the
  // fault-free fast path free of lookups and float math.
  std::set<std::pair<std::uint64_t, std::uint64_t>> cut_links_;
  bool asym_active_ = false;
  std::map<std::uint64_t, double> slow_factor_;
  bool slow_active_ = false;
  std::map<std::uint64_t, SimDuration> skew_;
};

}  // namespace dedisys
