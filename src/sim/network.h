// Simulated cluster network with partition and crash injection.
//
// Nodes communicate only through this class, which decides reachability
// from the current partition layout and advances the shared virtual clock
// by the configured message costs.  Link failures "lose" messages between
// partitions but never corrupt or duplicate them, matching the failure
// model of Section 1.1 (crash nodes, fair-lossy links).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/cost_model.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

/// Observer of topology changes (the GMS subscribes to drive view changes).
class TopologyListener {
 public:
  virtual ~TopologyListener() = default;
  virtual void on_topology_changed() = 0;
};

class SimNetwork {
 public:
  SimNetwork(SimClock& clock, CostModel cost) : clock_(clock), cost_(cost) {}

  SimClock& clock() { return clock_; }
  const CostModel& cost() const { return cost_; }

  // -- membership ---------------------------------------------------------

  /// Registers a node; newly added nodes are alive and in the sole
  /// partition group unless a partition is already in force.
  void add_node(NodeId node) {
    nodes_.push_back(node);
    group_of_[node] = 0;
    alive_.insert(node);
  }

  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }
  [[nodiscard]] bool is_alive(NodeId node) const {
    return alive_.count(node) != 0;
  }

  // -- failure injection ----------------------------------------------------

  /// Splits the cluster into the given groups.  Nodes not mentioned keep
  /// their previous group.  Notifies topology listeners.
  void partition(const std::vector<std::vector<NodeId>>& groups) {
    int next_group = 1;
    for (const auto& g : groups) {
      for (NodeId n : g) group_of_[n] = next_group;
      ++next_group;
    }
    notify();
  }

  /// Repairs all link failures: every alive node is mutually reachable.
  void heal() {
    for (auto& [node, group] : group_of_) group = 0;
    notify();
  }

  /// Pause-crash of a server node (Section 1.1): unreachable until recovery.
  void crash(NodeId node) {
    alive_.erase(node);
    notify();
  }

  /// Recovers a previously crashed node.
  void recover(NodeId node) {
    alive_.insert(node);
    notify();
  }

  // -- reachability -------------------------------------------------------

  [[nodiscard]] bool reachable(NodeId from, NodeId to) const {
    if (!is_alive(from) || !is_alive(to)) return false;
    return group_of_.at(from) == group_of_.at(to);
  }

  /// All alive nodes reachable from `from`, including `from` itself.
  [[nodiscard]] std::vector<NodeId> reachable_set(NodeId from) const {
    std::vector<NodeId> out;
    if (!is_alive(from)) return out;
    for (NodeId n : nodes_) {
      if (reachable(from, n)) out.push_back(n);
    }
    return out;
  }

  [[nodiscard]] bool fully_connected() const {
    for (NodeId n : nodes_) {
      if (!is_alive(n)) return false;
      if (group_of_.at(n) != group_of_.at(nodes_.front())) return false;
    }
    return true;
  }

  // -- message costs --------------------------------------------------------

  /// Charges the cost of one point-to-point message; returns false (message
  /// lost) when the destination is unreachable.
  bool charge_rpc(NodeId from, NodeId to) {
    if (!reachable(from, to)) return false;
    if (from != to) clock_.advance(cost_.rpc_latency);
    return true;
  }

  /// Charges a synchronous acked multicast from `from` to `receivers`
  /// (self excluded from per-receiver cost); returns the number reached.
  std::size_t charge_multicast(NodeId from,
                               const std::vector<NodeId>& receivers) {
    std::size_t reached = 0;
    for (NodeId r : receivers) {
      if (r != from && reachable(from, r)) ++reached;
    }
    if (reached > 0) {
      clock_.advance(cost_.multicast_base +
                     static_cast<SimDuration>(reached) *
                         cost_.multicast_per_receiver);
    }
    return reached;
  }

  // -- listeners ------------------------------------------------------------

  void subscribe(TopologyListener* listener) { listeners_.push_back(listener); }
  void unsubscribe(TopologyListener* listener) {
    listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                     listeners_.end());
  }

 private:
  void notify() {
    for (auto* l : listeners_) l->on_topology_changed();
  }

  SimClock& clock_;
  CostModel cost_;
  std::vector<NodeId> nodes_;
  std::unordered_map<NodeId, int> group_of_;
  std::unordered_set<NodeId> alive_;
  std::vector<TopologyListener*> listeners_;
};

}  // namespace dedisys
