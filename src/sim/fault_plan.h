// Typed fault operations and time-scheduled fault plans.
//
// The paper's failure model (Section 1.1) assumes pause-crash nodes and
// fair-lossy links: messages may be lost, delayed, duplicated or
// reordered, but are never corrupted, and a message resent forever is
// eventually delivered.  A `FaultPlan` makes that model executable: a
// seeded, time-ordered schedule of fault operations — partitions, node
// crashes and restarts, per-link loss/delay/duplication/reorder
// probabilities — that the `FaultEngine` applies against the `SimNetwork`
// as virtual time advances.  The same seed and plan always yield a
// byte-identical event schedule.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

/// Per-link message fault probabilities (fair-lossy link model).  All
/// probabilities are per message; `delay` is the extra latency charged when
/// a delay fires.  A default-constructed value means a perfect link.
struct LinkFaults {
  double drop = 0.0;        ///< message silently lost
  double duplicate = 0.0;   ///< message delivered twice
  double delay_prob = 0.0;  ///< message delayed by `delay`
  SimDuration delay = 0;    ///< extra latency when a delay fires
  double reorder = 0.0;     ///< multicast receiver order shuffled

  [[nodiscard]] bool any() const {
    return drop > 0.0 || duplicate > 0.0 || (delay_prob > 0.0 && delay > 0) ||
           reorder > 0.0;
  }
};

namespace fault {

/// Split the cluster into the given groups (nodes not mentioned keep their
/// previous group), exactly like the legacy SimNetwork::partition.
struct Partition {
  std::vector<std::vector<NodeId>> groups;
};

/// Pause-crash of a server node: unreachable until restarted.
struct Crash {
  NodeId node;
};

/// Restart of a previously crashed node; it rejoins via the GMS and (when
/// routed through the cluster's restart handler) recovers durable state.
struct Restart {
  NodeId node;
};

/// Repair all link failures: every alive node is mutually reachable.
struct Heal {};

/// Set the cluster-wide default link fault probabilities.
struct SetLinkFaults {
  LinkFaults faults;
};

/// Override the fault probabilities of one directed link.
struct SetLinkFaultsOn {
  NodeId from;
  NodeId to;
  LinkFaults faults;
};

using Op =
    std::variant<Partition, Crash, Restart, Heal, SetLinkFaults,
                 SetLinkFaultsOn>;

[[nodiscard]] inline const char* op_name(const Op& op) {
  struct Namer {
    const char* operator()(const Partition&) const { return "partition"; }
    const char* operator()(const Crash&) const { return "crash"; }
    const char* operator()(const Restart&) const { return "restart"; }
    const char* operator()(const Heal&) const { return "heal"; }
    const char* operator()(const SetLinkFaults&) const { return "link-faults"; }
    const char* operator()(const SetLinkFaultsOn&) const {
      return "link-faults-on";
    }
  };
  return std::visit(Namer{}, op);
}

/// Human-readable one-line description (trace event detail).
[[nodiscard]] std::string describe(const Op& op);

}  // namespace fault

/// One scheduled fault: apply `op` once simulated time reaches `at`.
struct TimedFault {
  SimTime at = 0;
  fault::Op op;
};

/// A deterministic schedule of fault operations.  `seed` drives every
/// probabilistic per-message decision taken while the plan is active.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<TimedFault> actions;

  FaultPlan& add(SimTime at, fault::Op op) {
    actions.push_back(TimedFault{at, std::move(op)});
    return *this;
  }

  [[nodiscard]] bool empty() const { return actions.empty(); }
  [[nodiscard]] std::size_t size() const { return actions.size(); }

  /// Orders the schedule by time (stable, so equal-time actions keep their
  /// insertion order).  The engine requires a sorted plan.
  void sort();
};

/// Knobs for `random_fault_plan`.
struct RandomPlanOptions {
  std::vector<NodeId> nodes;        ///< cluster membership (required)
  SimTime horizon = sim_ms(500);    ///< faults are scheduled in [0, horizon)
  std::size_t events = 8;           ///< number of scheduled fault actions
  double max_drop = 0.25;
  double max_duplicate = 0.20;
  double max_delay_prob = 0.25;
  SimDuration max_delay = sim_us(2000);
  double max_reorder = 0.25;
};

/// Generates a seeded random fault plan over the given nodes: partition
/// flapping, crash/restart pairs (at most one node down at a time) and
/// link-fault episodes.  The plan always ends — just past the horizon —
/// with a restart of any still-crashed node, a heal, and a reset of all
/// link faults, so a harness can reconcile afterwards.
[[nodiscard]] FaultPlan random_fault_plan(std::uint64_t seed,
                                          const RandomPlanOptions& options);

}  // namespace dedisys
