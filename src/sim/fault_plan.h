// Typed fault operations and time-scheduled fault plans.
//
// The paper's failure model (Section 1.1) assumes pause-crash nodes and
// fair-lossy links: messages may be lost, delayed, duplicated or
// reordered, but are never corrupted, and a message resent forever is
// eventually delivered.  A `FaultPlan` makes that model executable: a
// seeded, time-ordered schedule of fault operations — partitions, node
// crashes and restarts, per-link loss/delay/duplication/reorder
// probabilities — that the `FaultEngine` applies against the `SimNetwork`
// as virtual time advances.  The same seed and plan always yield a
// byte-identical event schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

/// One directed link `from -> to`.  Cutting it blocks messages in that
/// direction only; the reverse direction keeps flowing (gray failures:
/// asymmetric partitions, flapping links).
struct OneWayCut {
  NodeId from;
  NodeId to;
};

/// Per-link message fault probabilities (fair-lossy link model).  All
/// probabilities are per message; `delay` is the extra latency charged when
/// a delay fires.  A default-constructed value means a perfect link.
struct LinkFaults {
  double drop = 0.0;        ///< message silently lost
  double duplicate = 0.0;   ///< message delivered twice
  double delay_prob = 0.0;  ///< message delayed by `delay`
  SimDuration delay = 0;    ///< extra latency when a delay fires
  double reorder = 0.0;     ///< multicast receiver order shuffled

  [[nodiscard]] bool any() const {
    return drop > 0.0 || duplicate > 0.0 || (delay_prob > 0.0 && delay > 0) ||
           reorder > 0.0;
  }
};

namespace fault {

/// Split the cluster into the given groups (nodes not mentioned keep their
/// previous group), exactly like the legacy SimNetwork::partition.
struct Partition {
  std::vector<std::vector<NodeId>> groups;
};

/// Pause-crash of a server node: unreachable until restarted.
struct Crash {
  NodeId node;
};

/// Restart of a previously crashed node; it rejoins via the GMS and (when
/// routed through the cluster's restart handler) recovers durable state.
struct Restart {
  NodeId node;
};

/// Repair all link failures: every alive node is mutually reachable.
struct Heal {};

/// Set the cluster-wide default link fault probabilities.
struct SetLinkFaults {
  LinkFaults faults;
};

/// Override the fault probabilities of one directed link.
struct SetLinkFaultsOn {
  NodeId from;
  NodeId to;
  LinkFaults faults;
};

// -- gray failures -----------------------------------------------------------

/// Asymmetric (one-way) partition: cuts the given directed links.  The
/// reverse directions keep delivering, so a node may be able to send where
/// it cannot hear back — the failure mode that breaks naive "who can I
/// reach" view formation.  `Heal` (or `HealLinks{}`) repairs the cuts.
struct AsymPartition {
  std::vector<OneWayCut> cuts;
};

/// Repairs directed link cuts previously installed by `AsymPartition` (or
/// a flap's down phase).  An empty list repairs every cut link.
struct HealLinks {
  std::vector<OneWayCut> cuts;
};

/// Flapping link: the bidirectional link `a <-> b` oscillates between down
/// and up.  Applying the op cuts both directions immediately; the
/// `FaultEngine` then schedules alternating up/down toggles — dwell time
/// `period / 2` plus seeded jitter — until `duration` has elapsed, closing
/// with the link up.  Same plan seed, same toggle schedule.
struct Flap {
  NodeId a;
  NodeId b;
  SimDuration period = sim_ms(20);    ///< one full down+up cycle
  SimDuration duration = sim_ms(100); ///< total flapping window
};

/// Slow-but-alive node: every message leg touching `node` is charged
/// `multiplier` times its nominal cost.  The node stays in views and keeps
/// answering — it is laggy, not dead.  Multiplier 1.0 clears the slowdown.
struct SlowNode {
  NodeId node;
  double multiplier = 1.0;
};

/// Per-replica clock skew: `node`'s local stamps (entity update times that
/// feed the Section 4.2.1 freshness estimation) read `offset` ahead of the
/// shared virtual clock.  Offset 0 clears the skew.  Reconciliation must
/// stay version-based, so convergence is skew-proof.
struct ClockSkew {
  NodeId node;
  SimDuration offset = 0;
};

using Op =
    std::variant<Partition, Crash, Restart, Heal, SetLinkFaults,
                 SetLinkFaultsOn, AsymPartition, HealLinks, Flap, SlowNode,
                 ClockSkew>;

[[nodiscard]] inline const char* op_name(const Op& op) {
  struct Namer {
    const char* operator()(const Partition&) const { return "partition"; }
    const char* operator()(const Crash&) const { return "crash"; }
    const char* operator()(const Restart&) const { return "restart"; }
    const char* operator()(const Heal&) const { return "heal"; }
    const char* operator()(const SetLinkFaults&) const { return "link-faults"; }
    const char* operator()(const SetLinkFaultsOn&) const {
      return "link-faults-on";
    }
    const char* operator()(const AsymPartition&) const { return "asym"; }
    const char* operator()(const HealLinks&) const { return "heal-links"; }
    const char* operator()(const Flap&) const { return "flap"; }
    const char* operator()(const SlowNode&) const { return "slow"; }
    const char* operator()(const ClockSkew&) const { return "skew"; }
  };
  return std::visit(Namer{}, op);
}

/// Human-readable one-line description (trace event detail).
[[nodiscard]] std::string describe(const Op& op);

/// Convenience for tests and benches: builds a Partition op from dense
/// node indices (a Cluster constructs node i as NodeId{i}), so
/// `cluster.inject(fault::split_indices({{0, 1}, {2}}))` reads like the
/// deprecated index-based `Cluster::split`.
[[nodiscard]] inline Partition split_indices(
    const std::vector<std::vector<std::size_t>>& groups) {
  Partition p;
  p.groups.reserve(groups.size());
  for (const auto& g : groups) {
    std::vector<NodeId> ids;
    ids.reserve(g.size());
    for (std::size_t i : g) ids.push_back(NodeId{i});
    p.groups.push_back(std::move(ids));
  }
  return p;
}

}  // namespace fault

/// One scheduled fault: apply `op` once simulated time reaches `at`.
struct TimedFault {
  SimTime at = 0;
  fault::Op op;
};

/// A deterministic schedule of fault operations.  `seed` drives every
/// probabilistic per-message decision taken while the plan is active.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<TimedFault> actions;

  FaultPlan& add(SimTime at, fault::Op op) {
    actions.push_back(TimedFault{at, std::move(op)});
    return *this;
  }

  [[nodiscard]] bool empty() const { return actions.empty(); }
  [[nodiscard]] std::size_t size() const { return actions.size(); }

  /// Orders the schedule by time (stable, so equal-time actions keep their
  /// insertion order).  The engine requires a sorted plan.
  void sort();
};

/// Knobs for `random_fault_plan` and `random_gray_plan`.
struct RandomPlanOptions {
  std::vector<NodeId> nodes;        ///< cluster membership (required)
  SimTime horizon = sim_ms(500);    ///< faults are scheduled in [0, horizon)
  std::size_t events = 8;           ///< number of scheduled fault actions
  double max_drop = 0.25;
  double max_duplicate = 0.20;
  double max_delay_prob = 0.25;
  SimDuration max_delay = sim_us(2000);
  double max_reorder = 0.25;
  // -- gray knobs (consumed by random_gray_plan only) ----------------------
  double max_slow_multiplier = 4.0;        ///< SlowNode in (1, max]
  SimDuration max_clock_skew = sim_ms(5);  ///< |ClockSkew::offset| bound
  SimDuration min_flap_period = sim_ms(4);
  SimDuration max_flap_period = sim_ms(24);
  SimDuration max_flap_duration = sim_ms(80);
};

/// Generates a seeded random fault plan over the given nodes: partition
/// flapping, crash/restart pairs (at most one node down at a time) and
/// link-fault episodes.  The plan always ends — just past the horizon —
/// with a restart of any still-crashed node, a heal, and a reset of all
/// link faults, so a harness can reconcile afterwards.
[[nodiscard]] FaultPlan random_fault_plan(std::uint64_t seed,
                                          const RandomPlanOptions& options);

/// Like `random_fault_plan`, but the op mix additionally draws gray
/// failures: asymmetric one-way cuts, flapping links, slow-but-alive nodes
/// and per-replica clock skew.  The closing sequence restores everything —
/// crashed node restarted, links healed (including one-way cuts), link
/// faults cleared, slow multipliers and skews reset — so a harness can
/// reconcile and check convergence afterwards.
[[nodiscard]] FaultPlan random_gray_plan(std::uint64_t seed,
                                         const RandomPlanOptions& options);

/// Text round-trip for fault plans, used by the shrinker's regression seed
/// corpus (tests/gray_corpus/*.plan).  Format: a `seed N` line followed by
/// one `at <us> <op> <args>` line per action; `plan_from_text` throws
/// ConfigError on malformed input.
[[nodiscard]] std::string plan_to_text(const FaultPlan& plan);
[[nodiscard]] FaultPlan plan_from_text(const std::string& text);

}  // namespace dedisys
