// Deterministic fault-injection engine.
//
// Drives a `FaultPlan` against a `SimNetwork`: as the simulated clock
// advances, `poll()` applies every fault action whose scheduled time has
// been reached, in plan order.  Crash and restart actions can be routed
// through caller-supplied handlers (the cluster wires these so a restart
// performs GMS rejoin plus durable-state recovery); all other actions go
// straight to the network.  Each applied action is recorded as a
// `fault.injected` trace event when an observability hub is attached.
//
// Determinism: the engine seeds the network's per-message fault generator
// from the plan's seed on construction, and the plan itself is applied at
// fixed virtual times, so the same (seed, plan, workload) triple always
// produces a byte-identical event schedule.
#pragma once

#include <cstddef>
#include <functional>

#include "obs/observability.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

class FaultEngine {
 public:
  struct Stats {
    std::size_t applied = 0;
    std::size_t partitions = 0;
    std::size_t heals = 0;
    std::size_t crashes = 0;
    std::size_t restarts = 0;
    std::size_t link_changes = 0;
    // gray failures
    std::size_t asym_cuts = 0;
    std::size_t flaps = 0;          ///< Flap ops (not their toggles)
    std::size_t flap_toggles = 0;   ///< scheduled up/down transitions
    std::size_t slow_changes = 0;
    std::size_t skew_changes = 0;
  };

  /// Takes the plan by value (it is consumed action by action) and seeds
  /// the network's fault generator from `plan.seed`.  The plan is sorted
  /// by scheduled time on entry.
  FaultEngine(SimNetwork& net, FaultPlan plan);

  /// Wires the observability hub for fault.injected trace events.
  void set_observability(obs::Observability* obs) { obs_ = obs; }

  /// Routes `fault::Crash` actions through `handler` instead of applying
  /// them directly (the cluster drops the node's volatile state too).
  void set_crash_handler(std::function<void(NodeId)> handler) {
    crash_handler_ = std::move(handler);
  }

  /// Routes `fault::Restart` actions through `handler` (the cluster
  /// performs GMS rejoin and durable-state recovery).
  void set_restart_handler(std::function<void(NodeId)> handler) {
    restart_handler_ = std::move(handler);
  }

  /// Routes `fault::Partition` actions through `handler` (the cluster
  /// records the groups for reconciliation and traces the split).
  void set_partition_handler(
      std::function<void(const std::vector<std::vector<NodeId>>&)> handler) {
    partition_handler_ = std::move(handler);
  }

  /// Routes `fault::Heal` actions through `handler`.
  void set_heal_handler(std::function<void()> handler) {
    heal_handler_ = std::move(handler);
  }

  /// Applies every action scheduled at or before the current virtual time;
  /// returns the number applied.  Call between workload steps.
  std::size_t poll();

  /// Advances the clock to `when`, applying due actions along the way so
  /// each fires at exactly its scheduled time.
  std::size_t advance_to(SimTime when);

  [[nodiscard]] bool done() const { return next_ >= plan_.actions.size(); }

  /// Scheduled time of the next pending action (or SimTime max when done).
  [[nodiscard]] SimTime next_at() const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  SimNetwork& network() { return net_; }

 private:
  void apply_one(TimedFault action);

  /// Expands a Flap op into alternating up/down toggles (HealLinks /
  /// AsymPartition actions) inserted into the pending plan, dwell time
  /// `period / 2` plus seeded jitter, final state up.  Deterministic: the
  /// jitter stream derives from the plan seed.
  void schedule_flap(SimTime at, const fault::Flap& op);

  /// Inserts an action into the still-pending part of the plan, keeping it
  /// time-sorted (stable: equal-time actions keep insertion order).
  void insert_pending(TimedFault action);

  SimNetwork& net_;
  FaultPlan plan_;
  std::size_t next_ = 0;
  Rng flap_rng_{0};
  obs::Observability* obs_ = nullptr;
  std::function<void(NodeId)> crash_handler_;
  std::function<void(NodeId)> restart_handler_;
  std::function<void(const std::vector<std::vector<NodeId>>&)>
      partition_handler_;
  std::function<void()> heal_handler_;
  Stats stats_;
};

}  // namespace dedisys
