#include "scenarios/flight_full.h"

#include "objects/entity.h"
#include "objects/method_context.h"

namespace dedisys::scenarios {

void FlightBookingFull::define_classes(ClassRegistry& classes) {
  ClassDescriptor& flight = classes.define("Flight");
  flight.define_property("seats", Value{std::int64_t{0}}, "int");

  ClassDescriptor& person = classes.define("Person");
  person.define_property("name", Value{std::string{}}, "string");

  ClassDescriptor& ticket = classes.define("Ticket");
  ticket.define_property("flight", Value{}, "object");
  ticket.define_property("person", Value{}, "object");
}

void FlightBookingFull::register_constraints(ConstraintRepository& repository,
                                             SatisfactionDegree min_degree) {
  auto constraint = std::make_shared<TicketCountConstraint>(
      "TicketConstraint", ConstraintType::HardInvariant,
      ConstraintPriority::Tradeable);
  constraint->set_min_satisfaction_degree(min_degree);
  constraint->set_description(
      "the number of sold tickets must be less than or equal to the number "
      "of seats of a specific flight");

  ConstraintRegistration reg;
  reg.constraint = std::move(constraint);
  reg.context_class = "Flight";
  // Linking a ticket to its flight is the booking event; the context
  // object (the flight) is reached through the ticket's getFlight.
  reg.affected_methods.push_back(AffectedMethod{
      "Ticket", MethodSignature{"setFlight", {"object"}},
      ContextPreparation{ContextPreparationKind::ReferenceGetter,
                         "getFlight"}});
  // Shrinking a flight also re-triggers the check.
  reg.affected_methods.push_back(AffectedMethod{
      "Flight", MethodSignature{"setSeats", {"int"}},
      ContextPreparation{ContextPreparationKind::CalledObject, ""}});
  repository.register_constraint(std::move(reg));
}

ObjectId FlightBookingFull::create_flight(DedisysNode& node,
                                          std::int64_t seats) {
  TxScope tx(node.tx());
  const ObjectId id = node.create(tx.id(), "Flight");
  node.invoke(tx.id(), id, "setSeats", {Value{seats}});
  tx.commit();
  return id;
}

ObjectId FlightBookingFull::create_person(DedisysNode& node,
                                          const std::string& name) {
  TxScope tx(node.tx());
  const ObjectId id = node.create(tx.id(), "Person");
  node.invoke(tx.id(), id, "setName", {Value{name}});
  tx.commit();
  return id;
}

ObjectId FlightBookingFull::book(DedisysNode& node, ObjectId flight,
                                 ObjectId person) {
  TxScope tx(node.tx());
  const ObjectId ticket = node.create(tx.id(), "Ticket");
  node.invoke(tx.id(), ticket, "setPerson", {Value{person}});
  // Linking the flight triggers the ticket-count check; a violation or
  // rejected threat aborts the transaction, destroying the ticket again.
  node.invoke(tx.id(), ticket, "setFlight", {Value{flight}});
  tx.commit();
  return ticket;
}

void FlightBookingFull::cancel(DedisysNode& node, ObjectId ticket) {
  TxScope tx(node.tx());
  node.destroy(tx.id(), ticket);
  tx.commit();
}

std::vector<ObjectId> FlightBookingFull::tickets_of(Cluster& cluster,
                                                    DedisysNode& node,
                                                    ObjectId flight) {
  std::vector<ObjectId> out;
  for (ObjectId id : cluster.objects_of("Ticket")) {
    const Entity& ticket = node.accessor().read(id);
    const Value& ref = ticket.get("flight");
    if (!is_null(ref) && as_object(ref) == flight) out.push_back(id);
  }
  return out;
}

}  // namespace dedisys::scenarios
