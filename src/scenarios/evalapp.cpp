#include "scenarios/evalapp.h"

#include "objects/entity.h"
#include "objects/method_context.h"

namespace dedisys::scenarios {

namespace {

MethodBody noop() {
  return [](Entity&, MethodContext&, const std::vector<Value>&) {
    return Value{};
  };
}

void register_invariant(ConstraintRepository& repo, ConstraintPtr constraint,
                        const std::string& method) {
  ConstraintRegistration reg;
  reg.constraint = std::move(constraint);
  reg.context_class = "TestEntity";
  reg.affected_methods.push_back(AffectedMethod{
      "TestEntity", MethodSignature{method, {}},
      ContextPreparation{ContextPreparationKind::CalledObject, ""}});
  repo.register_constraint(std::move(reg));
}

}  // namespace

void EvalApp::define_classes(ClassRegistry& classes) {
  ClassDescriptor& entity = classes.define("TestEntity");
  entity.define_property("value", Value{std::string{}}, "string");
  // Mutating attribute whose setter carries the threat-raising constraint
  // (used by the reconciliation and reduced-history experiments).
  entity.define_property("payload", Value{std::string{}}, "string");
  for (const char* m :
       {"emptyPlain", "emptySatisfied", "emptyViolated", "emptyThreat",
        "emptySoftThreat", "emptyAsyncThreat"}) {
    entity.define_method(MethodSignature{m, {}}, MethodKind::Empty, noop());
  }
}

void EvalApp::register_constraints(ConstraintRepository& repo) {
  // Returning a fixed value without reading objects isolates the
  // constraint-handling overhead (runtime slice R5 eliminated, Section 5.1).
  auto satisfied = std::make_shared<FunctionConstraint>(
      "AlwaysSatisfied", ConstraintType::HardInvariant,
      ConstraintPriority::Tradeable,
      [](ConstraintValidationContext&) { return true; });
  satisfied->set_context_object_needed(false);
  register_invariant(repo, std::move(satisfied), "emptySatisfied");

  auto violated = std::make_shared<FunctionConstraint>(
      "AlwaysViolated", ConstraintType::HardInvariant,
      ConstraintPriority::Tradeable,
      [](ConstraintValidationContext&) { return false; });
  violated->set_context_object_needed(false);
  register_invariant(repo, std::move(violated), "emptyViolated");

  // Reading the context entity makes the validation subject to staleness:
  // every degraded-mode call raises a consistency threat.
  auto touch_predicate = [](ConstraintValidationContext& ctx) {
    (void)ctx.context_entity();
    return true;
  };
  auto hard_touch = std::make_shared<FunctionConstraint>(
      "TouchHard", ConstraintType::HardInvariant,
      ConstraintPriority::Tradeable, touch_predicate);
  {
    ConstraintRegistration reg;
    reg.constraint = std::move(hard_touch);
    reg.context_class = "TestEntity";
    const ContextPreparation called{ContextPreparationKind::CalledObject, ""};
    reg.affected_methods.push_back(AffectedMethod{
        "TestEntity", MethodSignature{"emptyThreat", {}}, called});
    reg.affected_methods.push_back(AffectedMethod{
        "TestEntity", MethodSignature{"setPayload", {"string"}}, called});
    repo.register_constraint(std::move(reg));
  }

  auto soft_touch = std::make_shared<FunctionConstraint>(
      "TouchSoft", ConstraintType::SoftInvariant, ConstraintPriority::Tradeable,
      touch_predicate);
  soft_touch->set_min_satisfaction_degree(SatisfactionDegree::Uncheckable);
  register_invariant(repo, std::move(soft_touch), "emptySoftThreat");

  auto async_touch = std::make_shared<FunctionConstraint>(
      "TouchAsync", ConstraintType::AsyncInvariant,
      ConstraintPriority::Tradeable, touch_predicate);
  async_touch->set_min_satisfaction_degree(SatisfactionDegree::Uncheckable);
  register_invariant(repo, std::move(async_touch), "emptyAsyncThreat");
}

std::vector<ObjectId> EvalApp::create_entities(DedisysNode& node,
                                               std::size_t count) {
  std::vector<ObjectId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TxScope tx(node.tx());
    out.push_back(node.create(tx.id(), "TestEntity"));
    tx.commit();
  }
  return out;
}

bool EvalApp::run_op(DedisysNode& node, ObjectId target,
                     const std::string& method, std::vector<Value> args) {
  try {
    TxScope tx(node.tx());
    node.invoke(tx.id(), target, method, std::move(args));
    tx.commit();
    return true;
  } catch (const DedisysError&) {
    return false;
  }
}

bool EvalApp::run_op_negotiated(DedisysNode& node, ObjectId target,
                                const std::string& method,
                                std::shared_ptr<NegotiationHandler> handler,
                                std::vector<Value> args) {
  try {
    TxScope tx(node.tx());
    node.ccmgr().register_negotiation_handler(tx.id(), std::move(handler));
    node.invoke(tx.id(), target, method, std::move(args));
    tx.commit();
    return true;
  } catch (const DedisysError&) {
    return false;
  }
}

void EvalApp::delete_entities(DedisysNode& node,
                              const std::vector<ObjectId>& ids) {
  for (ObjectId id : ids) {
    TxScope tx(node.tx());
    node.destroy(tx.id(), id);
    tx.commit();
  }
}

}  // namespace dedisys::scenarios
