#include "scenarios/ats.h"

#include "objects/entity.h"
#include "objects/method_context.h"

namespace dedisys::scenarios {

void AlarmTracking::define_classes(ClassRegistry& classes) {
  ClassDescriptor& alarm = classes.define("Alarm");
  alarm.define_property("alarmKind", Value{std::string{}}, "string");
  alarm.define_property("description", Value{std::string{}}, "string");
  alarm.define_property("repairReport", Value{}, "object");

  ClassDescriptor& report = classes.define("RepairReport");
  report.define_property("affectedComponent", Value{std::string{}}, "string");
  report.define_property("componentKind", Value{std::string{}}, "string");
  report.define_property("alarm", Value{}, "object");
}

void AlarmTracking::register_constraints(ConstraintRepository& repository,
                                         SatisfactionDegree min_degree) {
  auto constraint = std::make_shared<ComponentKindReferenceConstraint>(
      "ComponentKindReferenceConsistency", ConstraintType::HardInvariant,
      ConstraintPriority::Tradeable);
  constraint->set_min_satisfaction_degree(min_degree);
  constraint->set_description(
      "The repaired component must match the alarm kind");

  ConstraintRegistration reg;
  reg.constraint = std::move(constraint);
  reg.context_class = "RepairReport";
  reg.affected_methods.push_back(AffectedMethod{
      "RepairReport", MethodSignature{"setAffectedComponent", {"string"}},
      ContextPreparation{ContextPreparationKind::CalledObject, ""}});
  reg.affected_methods.push_back(AffectedMethod{
      "Alarm", MethodSignature{"setAlarmKind", {"string"}},
      ContextPreparation{ContextPreparationKind::ReferenceGetter,
                         "getRepairReport"}});
  repository.register_constraint(std::move(reg));
}

std::string AlarmTracking::constraint_descriptor_xml() {
  return R"(<constraints>
  <constraint name="ComponentKindReferenceConsistency"
              type="HARD" priority="RELAXABLE" contextObject="Y"
              minSatisfactionDegree="UNCHECKABLE">
    <class>ComponentKindReferenceConstraint</class>
    <context-class>RepairReport</context-class>
    <affected-methods>
      <affected-method>
        <context-preparation>
          <preparation-class>CalledObjectIsContextObject</preparation-class>
        </context-preparation>
        <objectMethod name="setAffectedComponent">
          <objectClass>RepairReport</objectClass>
          <arguments><argument>string</argument></arguments>
        </objectMethod>
      </affected-method>
      <affected-method>
        <context-preparation>
          <preparation-class>ReferenceIsContextObject</preparation-class>
          <params><param name="getter" value="getRepairReport"/></params>
        </context-preparation>
        <objectMethod name="setAlarmKind">
          <objectClass>Alarm</objectClass>
          <arguments><argument>string</argument></arguments>
        </objectMethod>
      </affected-method>
    </affected-methods>
  </constraint>
</constraints>)";
}

AlarmTracking::Pair AlarmTracking::create_linked(DedisysNode& node,
                                                 const std::string& kind) {
  TxScope tx(node.tx());
  const ObjectId alarm = node.create(tx.id(), "Alarm");
  const ObjectId report = node.create(tx.id(), "RepairReport");
  node.invoke(tx.id(), alarm, "setAlarmKind", {Value{kind}});
  node.invoke(tx.id(), alarm, "setRepairReport", {Value{report}});
  node.invoke(tx.id(), report, "setAlarm", {Value{alarm}});
  tx.commit();
  return Pair{alarm, report};
}

}  // namespace dedisys::scenarios
