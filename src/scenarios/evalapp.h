// Evaluation workload (the script-based "DedisysTest" application of
// Section 5.1).
//
// A TestEntity has one string attribute and a family of empty methods with
// different constraint associations, so benchmarks can isolate the cost of
// each middleware feature:
//   emptyPlain       — no associated constraints (interception overhead),
//   emptySatisfied   — constraint returning true without touching objects
//                      (pure constraint-handling cost, runtime slice R5=0),
//   emptyViolated    — constraint returning false (violation handling),
//   emptyThreat      — hard constraint reading the entity (in degraded mode
//                      every call raises a consistency threat),
//   emptySoftThreat  — same but soft (validated at commit),
//   emptyAsyncThreat — same but asynchronous (Section 5.5.3: in degraded
//                      mode recorded without validation or negotiation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/repository.h"
#include "middleware/cluster.h"

namespace dedisys::scenarios {

struct EvalApp {
  static void define_classes(ClassRegistry& classes);
  static void register_constraints(ConstraintRepository& repository);

  /// Creates `count` TestEntity instances on `node`, one transaction each.
  static std::vector<ObjectId> create_entities(DedisysNode& node,
                                               std::size_t count);

  /// Runs one committed transaction invoking `method` on `target`.
  /// Returns false when the transaction aborted (violation / rejected
  /// threat), true otherwise.
  static bool run_op(DedisysNode& node, ObjectId target,
                     const std::string& method,
                     std::vector<Value> args = {});

  /// Like run_op, but registers `handler` for dynamic threat negotiation
  /// within the transaction (Section 4.2.3).
  static bool run_op_negotiated(DedisysNode& node, ObjectId target,
                                const std::string& method,
                                std::shared_ptr<NegotiationHandler> handler,
                                std::vector<Value> args = {});

  /// Deletes entities, one transaction each.
  static void delete_entities(DedisysNode& node,
                              const std::vector<ObjectId>& ids);
};

/// Negotiation handler accepting every threat (the dynamic handler used in
/// the Section-5.1 degraded-mode measurements).
class AcceptAllNegotiation final : public NegotiationHandler {
 public:
  NegotiationOutcome negotiate(const ConsistencyThreat&,
                               ConstraintValidationContext&) override {
    NegotiationOutcome out;
    out.accepted = true;
    return out;
  }
};

}  // namespace dedisys::scenarios
