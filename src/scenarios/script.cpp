#include "scenarios/script.h"

#include <sstream>

#include "constraints/negotiation.h"
#include "util/strings.h"

namespace dedisys::scenarios {

namespace {

class ScriptNegotiation final : public NegotiationHandler {
 public:
  explicit ScriptNegotiation(bool accept) : accept_(accept) {}
  NegotiationOutcome negotiate(const ConsistencyThreat&,
                               ConstraintValidationContext&) override {
    NegotiationOutcome out;
    out.accepted = accept_;
    return out;
  }

 private:
  bool accept_;
};

std::vector<std::vector<std::size_t>> parse_groups(const std::string& spec) {
  std::vector<std::vector<std::size_t>> groups;
  for (const std::string& group : split(spec, '|')) {
    std::vector<std::size_t> nodes;
    for (const std::string& n : split(group, ',')) {
      nodes.push_back(std::stoul(n));
    }
    groups.push_back(std::move(nodes));
  }
  return groups;
}

std::size_t to_count(const std::string& word, std::size_t line) {
  try {
    return std::stoul(word);
  } catch (const std::exception&) {
    throw ConfigError("script line " + std::to_string(line) +
                      ": expected a number, got '" + word + "'");
  }
}

/// Best-effort argument boxing: integers stay integers, everything else is
/// a string.
Value parse_arg(const std::string& word) {
  if (!word.empty() &&
      word.find_first_not_of("-0123456789") == std::string::npos) {
    return Value{static_cast<std::int64_t>(std::stoll(word))};
  }
  return Value{word};
}

}  // namespace

ScriptReport ScriptRunner::run(const std::string& script) {
  ScriptReport report;
  std::istringstream in(script);
  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string_view trimmed = trim(raw);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> words;
    std::istringstream ws{std::string(trimmed)};
    std::string w;
    while (ws >> w) words.push_back(w);
    execute(words, line_number, report);
  }
  return report;
}

void ScriptRunner::run_invocations(const std::string& method,
                                   std::size_t count, std::vector<Value> args,
                                   ScriptReport& report) {
  if (working_set_.empty()) {
    throw ConfigError("script: 'invoke' before any 'create'");
  }
  DedisysNode& node = acting_node();
  for (std::size_t i = 0; i < count; ++i) {
    const ObjectId target = working_set_[i % working_set_.size()];
    try {
      TxScope tx(node.tx());
      if (negotiation_ != Negotiation::Static) {
        node.ccmgr().register_negotiation_handler(
            tx.id(), std::make_shared<ScriptNegotiation>(
                         negotiation_ == Negotiation::Accept));
      }
      node.invoke(tx.id(), target, method, args);
      tx.commit();
      ++report.committed_ops;
    } catch (const DedisysError&) {
      ++report.aborted_ops;
    }
  }
}

void ScriptRunner::execute(const std::vector<std::string>& words,
                           std::size_t line, ScriptReport& report) {
  const std::string& cmd = words.front();
  const auto need = [&](std::size_t n) {
    if (words.size() < n + 1) {
      throw ConfigError("script line " + std::to_string(line) + ": '" + cmd +
                        "' needs " + std::to_string(n) + " argument(s)");
    }
  };

  ScriptCommandResult result;
  result.line = line;
  result.command = join(words, " ");
  const SimTime start = cluster_->sim().clock.now();

  if (cmd == "node") {
    need(1);
    acting_ = to_count(words[1], line);
    if (acting_ >= cluster_->size()) {
      throw ConfigError("script line " + std::to_string(line) +
                        ": no node " + words[1]);
    }
  } else if (cmd == "create") {
    need(2);
    const std::size_t n = to_count(words[2], line);
    working_set_.clear();
    DedisysNode& node = acting_node();
    for (std::size_t i = 0; i < n; ++i) {
      TxScope tx(node.tx());
      working_set_.push_back(node.create(tx.id(), words[1]));
      tx.commit();
      ++report.committed_ops;
    }
    result.ops = n;
  } else if (cmd == "invoke") {
    need(2);
    const std::size_t n = to_count(words[2], line);
    std::vector<Value> args;
    for (std::size_t i = 3; i < words.size(); ++i) {
      args.push_back(parse_arg(words[i]));
    }
    run_invocations(words[1], n, std::move(args), report);
    result.ops = n;
  } else if (cmd == "delete") {
    DedisysNode& node = acting_node();
    for (ObjectId id : working_set_) {
      TxScope tx(node.tx());
      node.destroy(tx.id(), id);
      tx.commit();
      ++report.committed_ops;
    }
    result.ops = working_set_.size();
    working_set_.clear();
  } else if (cmd == "negotiate") {
    need(1);
    if (words[1] == "accept") {
      negotiation_ = Negotiation::Accept;
    } else if (words[1] == "reject") {
      negotiation_ = Negotiation::Reject;
    } else if (words[1] == "static") {
      negotiation_ = Negotiation::Static;
    } else {
      throw ConfigError("script line " + std::to_string(line) +
                        ": unknown negotiation mode " + words[1]);
    }
  } else if (cmd == "split") {
    need(1);
    cluster_->inject(fault::split_indices(parse_groups(words[1])));
  } else if (cmd == "heal") {
    cluster_->inject(fault::Heal{});
  } else if (cmd == "crash") {
    need(1);
    cluster_->sim().network.apply(
        fault::Crash{cluster_->node(to_count(words[1], line)).id()});
  } else if (cmd == "recover") {
    need(1);
    cluster_->sim().network.apply(
        fault::Restart{cluster_->node(to_count(words[1], line)).id()});
  } else if (cmd == "reconcile") {
    (void)cluster_->reconcile();
  } else if (cmd == "expect-threats") {
    need(1);
    const std::size_t expected = to_count(words[1], line);
    if (cluster_->threats().identity_count() != expected) {
      throw DedisysError(
          "script line " + std::to_string(line) + ": expected " +
          std::to_string(expected) + " threats, found " +
          std::to_string(cluster_->threats().identity_count()));
    }
  } else if (cmd == "expect-mode") {
    need(1);
    const std::string actual = to_string(acting_node().mode());
    if (actual != words[1]) {
      throw DedisysError("script line " + std::to_string(line) +
                         ": expected mode " + words[1] + ", found " + actual);
    }
  } else if (cmd == "expect-attr") {
    need(3);
    const std::size_t index = to_count(words[1], line);
    if (index >= working_set_.size()) {
      throw ConfigError("script line " + std::to_string(line) +
                        ": working-set index out of range");
    }
    const Entity& entity =
        acting_node().replication().local_replica(working_set_[index]);
    const std::string actual = to_string(entity.get(words[2]));
    const std::string expected = to_string(parse_arg(words[3]));
    if (actual != expected) {
      throw DedisysError("script line " + std::to_string(line) +
                         ": expected " + words[2] + "=" + expected +
                         ", found " + actual);
    }
  } else {
    throw ConfigError("script line " + std::to_string(line) +
                      ": unknown command '" + cmd + "'");
  }

  result.elapsed = cluster_->sim().clock.now() - start;
  report.commands.push_back(std::move(result));
}

// ---------------------------------------------------------------------------
// FailureSchedule
// ---------------------------------------------------------------------------

FailureSchedule& FailureSchedule::split_at(
    SimTime when, std::vector<std::vector<std::size_t>> groups) {
  Cluster* cluster = cluster_;
  cluster_->sim().events.schedule_at(
      when, [cluster, groups = std::move(groups)] {
        cluster->inject(fault::split_indices(groups));
      });
  return *this;
}

FailureSchedule& FailureSchedule::heal_at(SimTime when) {
  Cluster* cluster = cluster_;
  cluster_->sim().events.schedule_at(when, [cluster] { cluster->inject(fault::Heal{}); });
  return *this;
}

FailureSchedule& FailureSchedule::crash_at(SimTime when, std::size_t node) {
  Cluster* cluster = cluster_;
  cluster_->sim().events.schedule_at(when, [cluster, node] {
    cluster->sim().network.apply(fault::Crash{cluster->node(node).id()});
  });
  return *this;
}

FailureSchedule& FailureSchedule::recover_at(SimTime when, std::size_t node) {
  Cluster* cluster = cluster_;
  cluster_->sim().events.schedule_at(when, [cluster, node] {
    cluster->sim().network.apply(fault::Restart{cluster->node(node).id()});
  });
  return *this;
}

}  // namespace dedisys::scenarios
