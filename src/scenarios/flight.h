// Flight-booking scenario (Sections 1.3, 5.5.2).
//
// A Flight entity has `seats` and `soldTickets`; the ticket-constraint
// requires soldTickets <= seats.  During partitions, bookings continue in
// every partition; reconciliation discovers overbooking and the
// application's reconciliation handler rebooks passengers.
//
// The partition-sensitive variant (Section 5.5.2) apportions the remaining
// tickets by partition weight: partition x may sell
//     t_x = floor((seats - sold_at_degradation) * weight_fraction)
// further tickets, which avoids introducing inconsistencies at all when
// tickets are only sold (never cancelled) during degradation.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "constraints/constraint.h"
#include "constraints/repository.h"
#include "middleware/cluster.h"

namespace dedisys::scenarios {

/// The plain ticket-constraint: soldTickets <= seats.
class TicketConstraint final : public Constraint {
 public:
  TicketConstraint(std::string name, ConstraintType type,
                   ConstraintPriority prio)
      : Constraint(std::move(name), type, prio) {}

  bool validate(ConstraintValidationContext& ctx) override {
    const Entity& flight = ctx.context_entity();
    return as_int(flight.get("soldTickets")) <= as_int(flight.get("seats"));
  }
};

/// Partition-sensitive ticket-constraint (Section 5.5.2): on the first
/// degraded-mode validation of a flight it snapshots the sold count, then
/// limits degraded-mode sales to this partition's weighted share.
class PartitionSensitiveTicketConstraint final : public Constraint {
 public:
  PartitionSensitiveTicketConstraint(std::string name, ConstraintType type,
                                     ConstraintPriority prio)
      : Constraint(std::move(name), type, prio) {}

  /// Records the healthy-mode sold count before the first degraded-mode
  /// write ("the ticket-constraint saves the number of tickets sold in
  /// healthy mode", Section 5.5.2).
  void before_method_invocation(ConstraintValidationContext& ctx) override {
    if (!ctx.degraded() || !ctx.context_object().valid()) return;
    if (baselines_.count(ctx.context_object()) != 0) return;
    const Entity& flight = ctx.context_entity();
    baselines_[ctx.context_object()] = as_int(flight.get("soldTickets"));
  }

  bool validate(ConstraintValidationContext& ctx) override {
    const Entity& flight = ctx.context_entity();
    const std::int64_t sold = as_int(flight.get("soldTickets"));
    const std::int64_t seats = as_int(flight.get("seats"));
    if (!ctx.degraded()) {
      baselines_.erase(ctx.context_object());
      return sold <= seats;
    }
    auto [it, inserted] = baselines_.emplace(ctx.context_object(), sold);
    const std::int64_t baseline = it->second;
    const auto quota = static_cast<std::int64_t>(
        static_cast<double>(seats - baseline) * ctx.partition_weight());
    return sold <= baseline + quota;
  }

 private:
  std::unordered_map<ObjectId, std::int64_t> baselines_;
};

/// Postcondition with @pre state: after sellTickets(count) the sold count
/// must have increased by exactly count (Section 4.2.1's @pre mechanism).
class SellPostcondition final : public Constraint {
 public:
  SellPostcondition(std::string name, ConstraintType type,
                    ConstraintPriority prio)
      : Constraint(std::move(name), type, prio) {}

  void before_method_invocation(ConstraintValidationContext& ctx) override {
    if (!ctx.context_object().valid()) return;
    pre_sold_[ctx.context_object()] =
        as_int(ctx.context_entity().get("soldTickets"));
  }

  bool validate(ConstraintValidationContext& ctx) override {
    auto it = pre_sold_.find(ctx.context_object());
    if (it == pre_sold_.end()) return true;  // no @pre snapshot available
    const std::int64_t before = it->second;
    pre_sold_.erase(it);
    const std::int64_t after =
        as_int(ctx.context_entity().get("soldTickets"));
    return after == before + as_int(ctx.arguments().at(0));
  }

 private:
  std::unordered_map<ObjectId, std::int64_t> pre_sold_;
};

/// Query-based invariant without a context object (Section 3.2.2 case 2):
/// across the whole fleet, total bookings must not exceed total seats.
class FleetCapacityConstraint final : public Constraint {
 public:
  FleetCapacityConstraint(std::string name, ConstraintType type,
                          ConstraintPriority prio)
      : Constraint(std::move(name), type, prio) {
    set_context_object_needed(false);
  }

  bool validate(ConstraintValidationContext& ctx) override {
    std::int64_t sold = 0;
    std::int64_t seats = 0;
    for (ObjectId id : ctx.objects_of("Flight")) {
      const Entity& flight = ctx.read(id);
      sold += as_int(flight.get("soldTickets"));
      seats += as_int(flight.get("seats"));
    }
    return sold <= seats;
  }
};

struct FlightBooking {
  /// Defines the Flight class: properties seats/soldTickets, mutators
  /// sellTickets(count) / cancelTickets(count), query getAvailable().
  static void define_classes(ClassRegistry& classes);

  /// Registers the ticket-constraint (tradeable hard invariant accepting
  /// threats up to `min_degree`); `partition_sensitive` swaps in the
  /// Section-5.5.2 variant.
  static void register_constraints(
      ConstraintRepository& repository, bool partition_sensitive = false,
      SatisfactionDegree min_degree = SatisfactionDegree::PossiblySatisfied);

  /// Creates a flight with `seats` seats on `node`, committed in its own
  /// transaction; returns the object id.
  static ObjectId create_flight(DedisysNode& node, std::int64_t seats);

  /// Sells `count` tickets in a fresh transaction; throws on violation or
  /// rejected threat.
  static void sell(DedisysNode& node, ObjectId flight, std::int64_t count);

  static std::int64_t sold(DedisysNode& node, ObjectId flight);

  /// Registers design-by-contract style method contracts for
  /// Flight.sellTickets: a precondition (count > 0) and a postcondition
  /// with @pre state (sold increases by exactly count).
  static void register_method_contracts(ConstraintRepository& repository);

  /// Registers the fleet-wide query-based capacity invariant
  /// (no context object; affected objects obtained by query).
  static void register_fleet_constraint(ConstraintRepository& repository);
};

}  // namespace dedisys::scenarios
