// Property-based invariant harness over the chaos soak.
//
// Generates seeded random gray-failure fault plans, runs each through
// `run_chaos` and checks the dependability invariants plus two meta
// properties the simulator itself promises:
//
//   * determinism — two memo-off runs of the same (seed, plan) produce a
//     byte-identical trace timeline,
//   * memo equivalence — a memo-on run of the same inputs produces the
//     same timeline as memo-off (validation memoization must be
//     behavior-invisible).
//
// When a plan violates a property the harness shrinks it: a ddmin-style
// loop drops chunks of actions and truncates the tail while the violation
// still reproduces, ending with a minimal plan small enough to read and
// commit as a regression seed (tests/gray_corpus/*.plan, serialized via
// plan_to_text).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenarios/chaos.h"
#include "sim/fault_plan.h"

namespace dedisys::scenarios {

/// Outcome of checking one fault plan against every property.
struct PlanVerdict {
  bool invariants_ok = false;    ///< ChaosResult::invariants_ok()
  bool deterministic = false;    ///< memo-off timeline == second memo-off run
  bool memo_equivalent = false;  ///< memo-on timeline == memo-off timeline
  ChaosResult result;            ///< first memo-off run
  std::string violation;         ///< human-readable summary, empty when ok

  [[nodiscard]] bool ok() const {
    return invariants_ok && deterministic && memo_equivalent;
  }
};

/// Runs `plan` through the chaos soak three times (memo-off twice, memo-on
/// once) and checks invariants, determinism and memo equivalence.  The
/// plan overrides `options.plan`; everything else in `options` applies.
[[nodiscard]] PlanVerdict check_plan(const FaultPlan& plan,
                                     const ChaosOptions& options);

/// Returns true when `plan` violates some property the caller cares
/// about; used as the shrinker's reproduction oracle.
using ViolationPredicate = std::function<bool(const FaultPlan&)>;

struct ShrinkResult {
  FaultPlan plan;          ///< smallest plan still violating
  std::size_t runs = 0;    ///< predicate evaluations spent
  std::size_t removed = 0; ///< actions removed from the original
};

/// ddmin-style plan shrinking: repeatedly drops chunks of actions (and
/// truncates the tail) while `violates(plan)` stays true, halving chunk
/// size until single actions survive.  `max_runs` bounds the number of
/// predicate evaluations (each typically costs three chaos runs).  The
/// input plan must violate; the result always violates.
[[nodiscard]] ShrinkResult shrink_plan(const FaultPlan& plan,
                                       const ViolationPredicate& violates,
                                       std::size_t max_runs = 200);

/// Options for the randomized property suite.
struct PropertySuiteOptions {
  std::uint64_t first_seed = 1;
  std::size_t plans = 20;        ///< random gray plans to check
  ChaosOptions chaos;            ///< per-run chaos parameters
  bool shrink_failures = true;   ///< minimize violating plans
  std::size_t shrink_budget = 120;
};

/// One violating plan found by the suite.
struct PropertyFailure {
  std::uint64_t seed = 0;
  std::string violation;
  FaultPlan plan;          ///< original violating plan
  FaultPlan shrunk;        ///< minimized (== plan when shrinking disabled)
};

struct PropertySuiteResult {
  std::size_t plans_checked = 0;
  std::vector<PropertyFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Checks `plans` consecutive seeds starting at `first_seed`, generating a
/// random gray plan per seed and running `check_plan` on each; failures
/// are shrunk (when enabled) and returned.
[[nodiscard]] PropertySuiteResult run_property_suite(
    const PropertySuiteOptions& options);

/// Replays every `*.plan` file in `dir` (tests/gray_corpus) through
/// `check_plan`, returning the violations.  Each file is a plan_to_text
/// serialization; a missing or empty directory yields an empty result.
[[nodiscard]] PropertySuiteResult run_corpus(const std::string& dir,
                                             const ChaosOptions& options);

}  // namespace dedisys::scenarios
