// Chaos soak harness: a seeded random workload driven against a cluster
// while a deterministic fault plan injects partitions, crashes/restarts
// and lossy links.  After the plan drains, the harness heals, reconciles
// and checks the dependability invariants the middleware promises:
//
//   * no threat is silently lost (every stored threat is re-evaluated),
//   * at most one primary per object and partition (P4),
//   * replicas of every object converge after reconciliation,
//   * non-conflicted objects match the fault-free workload model.
//
// Everything is derived from (seed, options): the same inputs produce a
// byte-identical trace timeline, which bench_chaos_soak and check.sh
// exploit as a determinism oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "replication/protocol.h"
#include "runtime/options.h"
#include "sim/fault_plan.h"
#include "util/sim_clock.h"

namespace dedisys::scenarios {

struct ChaosOptions {
  std::uint64_t seed = 1;
  std::size_t nodes = 3;
  std::size_t objects = 4;
  std::size_t ops = 60;
  std::size_t fault_events = 10;
  /// Replica groups the entity space is partitioned across (1 = the
  /// classic fully-replicated soak, byte-identical to pre-shard runs).
  /// With more shards the entities are created through the sharded front
  /// door — replicas confined to each shard's node group — and the same
  /// invariants (no lost threats, P4 per shard and partition, post-heal
  /// convergence) are asserted under plans cutting across shard
  /// boundaries.
  std::size_t shards = 1;
  SimDuration horizon = sim_ms(400);
  ReplicationProtocol protocol = ReplicationProtocol::PrimaryPartition;
  /// Feature toggles forwarded to ClusterConfig verbatim.  Observability is
  /// forced on (the timeline is the determinism oracle) and the trace ring
  /// gets headroom for timeline comparisons.  `validation_memo` runs of the
  /// same seed must match memo-off runs byte for byte (check.sh --memo);
  /// `validation_scheduler` likewise (the chaos constraints are opaque, so
  /// every interference cluster is a singleton and batch order is the
  /// legacy identity order); `legacy_unidirectional_views` re-enables the
  /// split-brain regression pin.
  FeatureFlags flags{.observability = true, .trace_capacity = 65536};
  /// Draw the fault plan from `random_gray_plan` instead of
  /// `random_fault_plan`: the op mix then includes asymmetric one-way
  /// cuts, flapping links, slow-but-alive nodes and clock skew.
  bool gray = false;
  /// Explicit fault plan; overrides seeded plan generation when set (the
  /// invariant harness replays shrunk and corpus plans through this).
  std::optional<FaultPlan> plan;
};

struct ChaosResult {
  // workload outcome
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t skipped_node_down = 0;
  // fault plan
  std::size_t faults_applied = 0;
  std::size_t reconciles = 0;
  // invariant counters (all zero on a passing run)
  std::size_t lost_threats = 0;
  std::size_t threats_remaining = 0;
  std::size_t primary_violations = 0;
  std::size_t divergent_objects = 0;
  std::size_t model_mismatches = 0;
  // context
  std::size_t conflicts = 0;
  std::size_t threats_reevaluated = 0;
  std::string timeline;      ///< rendered trace (determinism oracle)
  std::string metrics_json;  ///< full observability export

  [[nodiscard]] bool invariants_ok() const {
    return lost_threats == 0 && threats_remaining == 0 &&
           primary_violations == 0 && divergent_objects == 0 &&
           model_mismatches == 0;
  }
};

/// Runs one seeded chaos soak; see the header comment for the invariants
/// checked.  Deterministic: same options, same result (including the
/// rendered timeline, byte for byte).
ChaosResult run_chaos(const ChaosOptions& options);

}  // namespace dedisys::scenarios
