// Chaos soak harness: a seeded random workload driven against a cluster
// while a deterministic fault plan injects partitions, crashes/restarts
// and lossy links.  After the plan drains, the harness heals, reconciles
// and checks the dependability invariants the middleware promises:
//
//   * no threat is silently lost (every stored threat is re-evaluated),
//   * at most one primary per object and partition (P4),
//   * replicas of every object converge after reconciliation,
//   * non-conflicted objects match the fault-free workload model.
//
// Everything is derived from (seed, options): the same inputs produce a
// byte-identical trace timeline, which bench_chaos_soak and check.sh
// exploit as a determinism oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "replication/protocol.h"
#include "sim/fault_plan.h"
#include "util/sim_clock.h"

namespace dedisys::scenarios {

struct ChaosOptions {
  std::uint64_t seed = 1;
  std::size_t nodes = 3;
  std::size_t objects = 4;
  std::size_t ops = 60;
  std::size_t fault_events = 10;
  SimDuration horizon = sim_ms(400);
  ReplicationProtocol protocol = ReplicationProtocol::PrimaryPartition;
  /// Trace ring-buffer capacity (timeline comparisons need headroom).
  std::size_t trace_capacity = 65536;
  /// Version-stamped validation memoization; memo-off and memo-on runs of
  /// the same seed must produce identical outcomes (the memo equivalence
  /// oracle in tests and check.sh --memo).
  bool validation_memo = false;
  /// Interference-aware validation scheduling (PR 8).  Scheduler-on and
  /// scheduler-off runs of the same seed must produce identical threat
  /// sets and timelines (the chaos constraints are opaque, so every
  /// interference cluster is a singleton and the batch order is the
  /// legacy identity order).
  bool validation_scheduler = false;
  /// Draw the fault plan from `random_gray_plan` instead of
  /// `random_fault_plan`: the op mix then includes asymmetric one-way
  /// cuts, flapping links, slow-but-alive nodes and clock skew.
  bool gray = false;
  /// Legacy outbound-only GMS views (split-brain regression pin; see
  /// ClusterConfig::legacy_unidirectional_views).
  bool legacy_unidirectional_views = false;
  /// Explicit fault plan; overrides seeded plan generation when set (the
  /// invariant harness replays shrunk and corpus plans through this).
  std::optional<FaultPlan> plan;
};

struct ChaosResult {
  // workload outcome
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t skipped_node_down = 0;
  // fault plan
  std::size_t faults_applied = 0;
  std::size_t reconciles = 0;
  // invariant counters (all zero on a passing run)
  std::size_t lost_threats = 0;
  std::size_t threats_remaining = 0;
  std::size_t primary_violations = 0;
  std::size_t divergent_objects = 0;
  std::size_t model_mismatches = 0;
  // context
  std::size_t conflicts = 0;
  std::size_t threats_reevaluated = 0;
  std::string timeline;      ///< rendered trace (determinism oracle)
  std::string metrics_json;  ///< full observability export

  [[nodiscard]] bool invariants_ok() const {
    return lost_threats == 0 && threats_remaining == 0 &&
           primary_violations == 0 && divergent_objects == 0 &&
           model_mismatches == 0;
  }
};

/// Runs one seeded chaos soak; see the header comment for the invariants
/// checked.  Deterministic: same options, same result (including the
/// rendered timeline, byte for byte).
ChaosResult run_chaos(const ChaosOptions& options);

}  // namespace dedisys::scenarios
