#include "scenarios/flight.h"

#include "objects/entity.h"
#include "objects/method_context.h"

namespace dedisys::scenarios {

void FlightBooking::define_classes(ClassRegistry& classes) {
  ClassDescriptor& flight = classes.define("Flight");
  flight.define_property("seats", Value{std::int64_t{0}}, "int");
  flight.define_property("soldTickets", Value{std::int64_t{0}}, "int");
  flight.define_method(
      MethodSignature{"sellTickets", {"int"}}, MethodKind::Mutator,
      [](Entity& self, MethodContext&, const std::vector<Value>& args) {
        self.set("soldTickets",
                 Value{as_int(self.get("soldTickets")) + as_int(args.at(0))});
        return Value{};
      });
  flight.define_method(
      MethodSignature{"cancelTickets", {"int"}}, MethodKind::Mutator,
      [](Entity& self, MethodContext&, const std::vector<Value>& args) {
        self.set("soldTickets",
                 Value{as_int(self.get("soldTickets")) - as_int(args.at(0))});
        return Value{};
      });
  flight.define_method(
      MethodSignature{"getAvailable", {}}, MethodKind::Query,
      [](Entity& self, MethodContext&, const std::vector<Value>&) {
        return Value{as_int(self.get("seats")) -
                     as_int(self.get("soldTickets"))};
      });
}

void FlightBooking::register_constraints(ConstraintRepository& repository,
                                         bool partition_sensitive,
                                         SatisfactionDegree min_degree) {
  ConstraintPtr constraint;
  if (partition_sensitive) {
    constraint = std::make_shared<PartitionSensitiveTicketConstraint>(
        "TicketConstraint", ConstraintType::HardInvariant,
        ConstraintPriority::Tradeable);
  } else {
    constraint = std::make_shared<TicketConstraint>(
        "TicketConstraint", ConstraintType::HardInvariant,
        ConstraintPriority::Tradeable);
  }
  constraint->set_min_satisfaction_degree(min_degree);
  constraint->set_description(
      "The system must not sell more tickets than available seats");

  ConstraintRegistration reg;
  reg.constraint = std::move(constraint);
  reg.context_class = "Flight";
  const ContextPreparation called{ContextPreparationKind::CalledObject, ""};
  for (const char* method :
       {"sellTickets", "cancelTickets", "setSoldTickets", "setSeats"}) {
    reg.affected_methods.push_back(
        AffectedMethod{"Flight", MethodSignature{method, {"int"}}, called});
  }
  repository.register_constraint(std::move(reg));
}

void FlightBooking::register_method_contracts(
    ConstraintRepository& repository) {
  const ContextPreparation called{ContextPreparationKind::CalledObject, ""};

  auto pre = std::make_shared<FunctionConstraint>(
      "SellCountPositive", ConstraintType::Precondition,
      ConstraintPriority::NonTradeable, [](ConstraintValidationContext& ctx) {
        return as_int(ctx.arguments().at(0)) > 0;
      });
  pre->set_context_object_needed(false);
  ConstraintRegistration pre_reg;
  pre_reg.constraint = std::move(pre);
  pre_reg.affected_methods.push_back(
      AffectedMethod{"Flight", MethodSignature{"sellTickets", {"int"}}, called});
  repository.register_constraint(std::move(pre_reg));

  auto post = std::make_shared<SellPostcondition>(
      "SoldIncreasesBySellCount", ConstraintType::Postcondition,
      ConstraintPriority::NonTradeable);
  ConstraintRegistration post_reg;
  post_reg.constraint = std::move(post);
  post_reg.context_class = "Flight";
  post_reg.affected_methods.push_back(
      AffectedMethod{"Flight", MethodSignature{"sellTickets", {"int"}}, called});
  repository.register_constraint(std::move(post_reg));
}

void FlightBooking::register_fleet_constraint(
    ConstraintRepository& repository) {
  auto constraint = std::make_shared<FleetCapacityConstraint>(
      "FleetCapacity", ConstraintType::SoftInvariant,
      ConstraintPriority::Tradeable);
  constraint->set_min_satisfaction_degree(
      SatisfactionDegree::PossiblySatisfied);
  ConstraintRegistration reg;
  reg.constraint = std::move(constraint);
  reg.affected_methods.push_back(AffectedMethod{
      "Flight", MethodSignature{"sellTickets", {"int"}},
      ContextPreparation{ContextPreparationKind::None, ""}});
  repository.register_constraint(std::move(reg));
}

ObjectId FlightBooking::create_flight(DedisysNode& node, std::int64_t seats) {
  TxScope tx(node.tx());
  const ObjectId id = node.create(tx.id(), "Flight");
  node.invoke(tx.id(), id, "setSeats", {Value{seats}});
  tx.commit();
  return id;
}

void FlightBooking::sell(DedisysNode& node, ObjectId flight,
                         std::int64_t count) {
  TxScope tx(node.tx());
  node.invoke(tx.id(), flight, "sellTickets", {Value{count}});
  tx.commit();
}

std::int64_t FlightBooking::sold(DedisysNode& node, ObjectId flight) {
  TxScope tx(node.tx());
  const Value v = node.invoke(tx.id(), flight, "getSoldTickets");
  tx.commit();
  return as_int(v);
}

}  // namespace dedisys::scenarios
