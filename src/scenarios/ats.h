// Alarm tracking system (ATS) scenario (Section 1.4, Fig. 1.5).
//
// Alarms (managed by administrative operators) reference RepairReports
// (filled in by technical operators).  The ComponentKindReferenceConsistency
// constraint requires the repaired component kind to match the alarm kind —
// e.g. an alarm with alarmKind="Signal" can only be removed by repairing a
// "Signal Controller" or a "Signal Cable".  Both operators work in
// different partitions; the constraint is tradeable and even *possibly
// violated* threats may be accepted (the technical operator knows the
// component better than the stale alarm copy, Section 3.1).
#pragma once

#include <string>

#include "constraints/constraint.h"
#include "constraints/repository.h"
#include "middleware/cluster.h"

namespace dedisys::scenarios {

/// ComponentKindReferenceConsistency (Fig. 1.5): the affected component of
/// the repair report must belong to the alarm's kind — modelled as the
/// component name starting with the alarm kind.
class ComponentKindReferenceConstraint final : public Constraint {
 public:
  ComponentKindReferenceConstraint(std::string name, ConstraintType type,
                                   ConstraintPriority prio)
      : Constraint(std::move(name), type, prio) {}

  bool validate(ConstraintValidationContext& ctx) override {
    const Entity& report = ctx.context_entity();  // RepairReport
    const Value& alarm_ref = report.get("alarm");
    if (is_null(alarm_ref)) return true;  // not yet linked
    const Entity& alarm = ctx.read(as_object(alarm_ref));
    const std::string& kind = as_string(alarm.get("alarmKind"));
    const std::string& component = as_string(report.get("affectedComponent"));
    if (component.empty()) return true;  // no repair recorded yet
    return component.rfind(kind, 0) == 0;  // component starts with kind
  }
};

struct AlarmTracking {
  /// Defines Alarm {alarmKind, description} and RepairReport
  /// {affectedComponent, componentKind, alarm->Alarm}.
  static void define_classes(ClassRegistry& classes);

  /// Registers ComponentKindReferenceConsistency as a tradeable hard
  /// invariant on RepairReport, affected by
  /// RepairReport.setAffectedComponent and Alarm.setAlarmKind (the latter
  /// reaching the context object through getRepairReport, Listing 4.1).
  static void register_constraints(
      ConstraintRepository& repository,
      SatisfactionDegree min_degree = SatisfactionDegree::PossiblyViolated);

  /// Returns the Listing-4.1-style XML descriptor for this constraint
  /// (exercised by the config-loading path).
  static std::string constraint_descriptor_xml();

  /// Creates a linked Alarm/RepairReport pair; returns {alarm, report}.
  struct Pair {
    ObjectId alarm;
    ObjectId report;
  };
  static Pair create_linked(DedisysNode& node, const std::string& alarm_kind);
};

}  // namespace dedisys::scenarios
