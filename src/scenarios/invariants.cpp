#include "scenarios/invariants.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace dedisys::scenarios {

namespace {

std::string summarize_invariants(const ChaosResult& r) {
  std::string out;
  auto add = [&](const char* name, std::size_t count) {
    if (count == 0) return;
    if (!out.empty()) out += ", ";
    out += name;
    out += '=';
    out += std::to_string(count);
  };
  add("lost_threats", r.lost_threats);
  add("threats_remaining", r.threats_remaining);
  add("primary_violations", r.primary_violations);
  add("divergent_objects", r.divergent_objects);
  add("model_mismatches", r.model_mismatches);
  return out;
}

}  // namespace

PlanVerdict check_plan(const FaultPlan& plan, const ChaosOptions& options) {
  ChaosOptions opts = options;
  opts.plan = plan;
  opts.flags.validation_memo = false;

  PlanVerdict verdict;
  verdict.result = run_chaos(opts);
  verdict.invariants_ok = verdict.result.invariants_ok();

  const ChaosResult second = run_chaos(opts);
  verdict.deterministic = second.timeline == verdict.result.timeline;

  opts.flags.validation_memo = true;
  const ChaosResult memo = run_chaos(opts);
  verdict.memo_equivalent = memo.timeline == verdict.result.timeline;

  if (!verdict.invariants_ok) {
    verdict.violation = "invariants: " + summarize_invariants(verdict.result);
  } else if (!verdict.deterministic) {
    verdict.violation = "non-deterministic: memo-off timelines differ";
  } else if (!verdict.memo_equivalent) {
    verdict.violation = "memo divergence: memo-on timeline differs";
  }
  return verdict;
}

ShrinkResult shrink_plan(const FaultPlan& plan,
                         const ViolationPredicate& violates,
                         std::size_t max_runs) {
  ShrinkResult out;
  out.plan = plan;
  const std::size_t original = plan.actions.size();

  auto try_candidate = [&](FaultPlan candidate) {
    if (out.runs >= max_runs) return false;
    ++out.runs;
    if (!violates(candidate)) return false;
    out.plan = std::move(candidate);
    return true;
  };

  // Tail truncation first: violations usually reproduce without the
  // closing heal/reset sequence, and dropping the tail wholesale is the
  // cheapest big win.
  bool progress = true;
  while (progress && out.plan.actions.size() > 1 && out.runs < max_runs) {
    progress = false;
    FaultPlan candidate = out.plan;
    candidate.actions.resize(candidate.actions.size() / 2);
    if (try_candidate(std::move(candidate))) progress = true;
  }

  // ddmin: remove chunks of decreasing size while the violation persists.
  std::size_t chunk = out.plan.actions.size() / 2;
  if (chunk == 0) chunk = 1;
  while (chunk >= 1 && out.runs < max_runs) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < out.plan.actions.size() && out.runs < max_runs;) {
      if (out.plan.actions.size() <= 1) break;
      FaultPlan candidate = out.plan;
      const std::size_t end =
          std::min(start + chunk, candidate.actions.size());
      candidate.actions.erase(
          candidate.actions.begin() + static_cast<std::ptrdiff_t>(start),
          candidate.actions.begin() + static_cast<std::ptrdiff_t>(end));
      if (!candidate.actions.empty() && try_candidate(std::move(candidate))) {
        removed_any = true;  // same start now points at the next chunk
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = std::max<std::size_t>(1, chunk / 2);
    if (!removed_any && chunk == 1 && out.plan.actions.size() <= 1) break;
  }

  out.removed = original - out.plan.actions.size();
  return out;
}

PropertySuiteResult run_property_suite(const PropertySuiteOptions& options) {
  PropertySuiteResult out;
  RandomPlanOptions plan_options;
  plan_options.horizon = options.chaos.horizon;
  plan_options.events = options.chaos.fault_events;
  for (std::size_t n = 0; n < options.chaos.nodes; ++n) {
    plan_options.nodes.push_back(NodeId{n});
  }

  for (std::size_t i = 0; i < options.plans; ++i) {
    const std::uint64_t seed = options.first_seed + i;
    ChaosOptions chaos = options.chaos;
    chaos.seed = seed;  // workload stream still derives from the seed
    const FaultPlan plan = random_gray_plan(seed, plan_options);
    PlanVerdict verdict = check_plan(plan, chaos);
    ++out.plans_checked;
    if (verdict.ok()) continue;

    PropertyFailure failure;
    failure.seed = seed;
    failure.violation = verdict.violation;
    failure.plan = plan;
    failure.shrunk = plan;
    if (options.shrink_failures) {
      failure.shrunk =
          shrink_plan(
              plan,
              [&](const FaultPlan& candidate) {
                return !check_plan(candidate, chaos).ok();
              },
              options.shrink_budget)
              .plan;
    }
    out.failures.push_back(std::move(failure));
  }
  return out;
}

PropertySuiteResult run_corpus(const std::string& dir,
                               const ChaosOptions& options) {
  PropertySuiteResult out;
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".plan") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const FaultPlan plan = plan_from_text(buffer.str());

    ChaosOptions chaos = options;
    chaos.seed = plan.seed;
    PlanVerdict verdict = check_plan(plan, chaos);
    ++out.plans_checked;
    if (verdict.ok()) continue;

    PropertyFailure failure;
    failure.seed = plan.seed;
    failure.violation = path.filename().string() + ": " + verdict.violation;
    failure.plan = plan;
    failure.shrunk = plan;
    out.failures.push_back(std::move(failure));
  }
  return out;
}

}  // namespace dedisys::scenarios
