#include "scenarios/chaos.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "middleware/admin.h"
#include "middleware/cluster.h"
#include "replication/reconciler.h"
#include "scenarios/evalapp.h"
#include "sim/fault_engine.h"
#include "sim/fault_plan.h"
#include "util/rng.h"

namespace dedisys::scenarios {

namespace {

/// Latest-version-wins resolution that additionally records which objects
/// ever had a write-write conflict (the model-equivalence check skips
/// those: the fault-free workload order and the version order may differ).
class RecordingConflictHandler final : public ReplicaConsistencyHandler {
 public:
  EntitySnapshot reconcile_replicas(
      ObjectId id, const std::vector<EntitySnapshot>& candidates) override {
    conflicted.insert(id);
    return fallback.reconcile_replicas(id, candidates);
  }

  std::set<ObjectId> conflicted;

 private:
  LatestVersionWins fallback;
};

/// P4: every node of the invoker's partition must elect the same write
/// primary for `target`, and that primary must lie inside the partition.
/// A "partition" is the strongly-connected component of mutually reachable
/// nodes: under asymmetric cuts, outbound reachability would lump nodes
/// together that cannot agree on anything.
/// Creates the chaos entities through the sharded front door, spread
/// round-robin across the shards (replicas confined to each shard's node
/// group).  Deterministic: client keys are searched in ascending order for
/// each target shard and batches apply in shard/queue order.
std::vector<ObjectId> create_entities_sharded(Cluster& cluster,
                                              std::size_t count) {
  std::vector<ObjectId> ids;
  ids.reserve(count);
  cluster.front_door().set_outcome_sink([&ids](const shard::Outcome& o) {
    if (o.committed) ids.push_back(o.created);
  });
  const std::size_t shard_count = cluster.shards().shard_count();
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const shard::ShardId want = i % shard_count;
    while (cluster.shards().shard_of_key(key) != want) ++key;
    shard::Request req;
    req.op = shard::RequestOp::Create;
    req.class_name = "TestEntity";
    req.client = key++;
    cluster.submit(std::move(req));
  }
  cluster.front_door().drain();
  cluster.front_door().set_outcome_sink(nullptr);
  return ids;
}

void check_primary_per_partition(Cluster& cluster, DedisysNode& invoker,
                                 ObjectId target, ChaosResult& result) {
  const std::vector<NodeId> part =
      cluster.sim().network.mutually_reachable_set(invoker.id());
  std::optional<NodeId> primary;
  for (NodeId nid : part) {
    DedisysNode* peer = cluster.node_by_id(nid);
    if (peer == nullptr) continue;
    NodeId elected;
    try {
      elected = peer->replication().execution_node(target, /*is_write=*/true);
    } catch (const DedisysError&) {
      continue;  // this node may not write (e.g. minority, primary-backup)
    }
    if (std::find(part.begin(), part.end(), elected) == part.end()) {
      ++result.primary_violations;  // primary outside the partition
      return;
    }
    if (!primary) {
      primary = elected;
    } else if (!(*primary == elected)) {
      ++result.primary_violations;  // split-brain within one partition
      return;
    }
  }
}

}  // namespace

ChaosResult run_chaos(const ChaosOptions& options) {
  ChaosResult result;

  ClusterConfig config;
  config.nodes = options.nodes;
  config.protocol = options.protocol;
  config.flags = options.flags;
  config.flags.observability = true;  // the timeline is the oracle
  config.shards = options.shards;
  Cluster cluster(config);
  AdminConsole admin(cluster);

  EvalApp::define_classes(cluster.classes());
  EvalApp::register_constraints(cluster.constraints());
  if (options.flags.validation_scheduler) {
    // The scheduler consults the repository's ConfigAnalysis; without it
    // the batch order silently falls back to the legacy identity order.
    analysis::analyze_repository(cluster.constraints(), &cluster.classes());
  }
  // shards == 1 keeps the legacy full-replication create path so existing
  // seed-pinned timelines stay byte-identical; with more shards the
  // entities enter through the front door, confined to their shard.
  const std::vector<ObjectId> ids =
      options.shards > 1
          ? create_entities_sharded(cluster, options.objects)
          : EvalApp::create_entities(cluster.node(0), options.objects);

  RandomPlanOptions plan_options;
  plan_options.nodes = cluster.sim().network.nodes();
  plan_options.horizon = options.horizon;
  plan_options.events = options.fault_events;
  FaultPlan plan;
  if (options.plan) {
    plan = *options.plan;
  } else if (options.gray) {
    plan = random_gray_plan(options.seed, plan_options);
  } else {
    plan = random_fault_plan(options.seed, plan_options);
  }
  FaultEngine engine(cluster.sim().network, std::move(plan));
  cluster.adopt_fault_engine(engine);

  RecordingConflictHandler recorder;

  auto all_up_and_connected = [&] {
    for (NodeId n : cluster.sim().network.nodes()) {
      if (!cluster.sim().network.is_alive(n)) return false;
    }
    return cluster.sim().network.fully_connected();
  };
  auto needs_reconcile = [&] {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.node(i).mode() != SystemMode::Healthy) return true;
    }
    return false;
  };
  // Reconciliation runs whenever a heal (or final restart) re-unites the
  // cluster — the paper's lifecycle: degraded mode ends with the repair,
  // and reconciliation re-establishes full consistency before normal
  // operation resumes.
  auto maybe_reconcile = [&] {
    if (!all_up_and_connected() || !needs_reconcile()) return;
    const std::size_t before = cluster.threats().identity_count();
    const Cluster::ReconciliationReport report =
        cluster.reconcile(&recorder, nullptr, 0);
    ++result.reconciles;
    result.threats_reevaluated += report.constraints.reevaluated;
    if (report.constraints.reevaluated < before) {
      result.lost_threats += before - report.constraints.reevaluated;
    }
  };

  // Seeded workload, decoupled from both the plan-shape stream and the
  // per-message fault stream.
  Rng workload(options.seed ^ 0xC7A05C0DE5ULL);
  auto accept_all = std::make_shared<AcceptAllNegotiation>();
  // Fault-free model: last committed value per object and attribute.
  std::map<ObjectId, std::map<std::string, std::string>> model;

  for (std::size_t i = 0; i < options.ops; ++i) {
    engine.poll();
    maybe_reconcile();

    DedisysNode& invoker = cluster.node(workload.below(cluster.size()));
    const ObjectId target = ids[workload.below(ids.size())];
    const std::uint64_t kind = workload.below(4);
    if (!cluster.sim().network.is_alive(invoker.id())) {
      ++result.skipped_node_down;
      continue;
    }
    check_primary_per_partition(cluster, invoker, target, result);

    const std::string value = "w" + std::to_string(i);
    bool committed = false;
    const char* attribute = nullptr;
    if (kind == 0) {
      attribute = "value";
      committed = EvalApp::run_op_negotiated(invoker, target, "setValue",
                                             accept_all, {Value{value}});
    } else if (kind <= 2) {
      attribute = "payload";  // carries a hard constraint: threats when
                              // degraded, negotiated and accepted
      committed = EvalApp::run_op_negotiated(invoker, target, "setPayload",
                                             accept_all, {Value{value}});
    } else {
      committed =
          EvalApp::run_op_negotiated(invoker, target, "emptyThreat",
                                     accept_all);
    }
    if (committed) {
      ++result.committed;
      if (attribute != nullptr) model[target][attribute] = value;
    } else {
      ++result.aborted;
    }
  }

  // Drain the plan: generated plans end with restart + heal + link-fault
  // reset (and gray resets) just past the horizon, so the cluster is whole
  // again.  Flap expansion and explicit plans may schedule actions past
  // that guard; drain those too so no fault stays armed.
  if (!engine.done()) {
    engine.advance_to(options.horizon + 3);
    while (!engine.done()) engine.advance_to(engine.next_at());
  }
  maybe_reconcile();

  result.faults_applied = engine.stats().applied;
  result.conflicts = recorder.conflicted.size();
  result.threats_remaining = cluster.threats().identity_count();

  // Convergence: after reconciliation, every replica of every object holds
  // the same version and attributes.
  for (ObjectId id : ids) {
    std::optional<EntitySnapshot> reference;
    bool divergent = false;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      ReplicationManager& repl = cluster.node(i).replication();
      if (!repl.has_local_replica(id)) continue;
      const EntitySnapshot snap = repl.local_replica(id).snapshot();
      if (!reference) {
        reference = snap;
      } else if (reference->version != snap.version ||
                 reference->attributes != snap.attributes) {
        divergent = true;
      }
    }
    if (divergent) ++result.divergent_objects;

    // Model equivalence: objects that never saw a write-write conflict
    // must end up exactly as a fault-free run of the committed ops would
    // leave them.
    const auto expected = model.find(id);
    if (expected == model.end() || recorder.conflicted.count(id) != 0 ||
        !reference) {
      continue;
    }
    for (const auto& [attribute, want] : expected->second) {
      const auto got = reference->attributes.find(attribute);
      if (got == reference->attributes.end() ||
          !(got->second == Value{want})) {
        ++result.model_mismatches;
      }
    }
  }

  result.timeline = admin.timeline();
  result.metrics_json = admin.metrics_json();
  return result;
}

}  // namespace dedisys::scenarios
