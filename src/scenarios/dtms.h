// Distributed telecommunication management system (DTMS) scenario
// (Section 1.4, [SG03]) — the paper's primary industrial motivation.
//
// Each site runs its own DTMS instance managing the voice communication
// system (VCS) hardware installed there; the hardware is represented by
// objects BOUND TO THAT SITE (replica set = the site's node only), because
// a site failure must not have effects beyond the site.  Communication
// channels span two sites: their endpoint configurations must be
// consistent (same frequency) for the channel to work — an inter-object
// constraint across site boundaries.
//
// When the sites partition, the peer endpoint becomes UNREACHABLE (no
// replica in the local partition): constraint validation is impossible
// (NCC -> uncheckable), yet the site operator must be able to retune the
// local endpoint.  The uncheckable threat is accepted and resolved after
// the link is repaired.
#pragma once

#include <string>

#include "constraints/constraint.h"
#include "constraints/repository.h"
#include "middleware/cluster.h"

namespace dedisys::scenarios {

/// ChannelConfigConsistency: both endpoints of a channel must be tuned to
/// the same frequency (inter-object, inter-site constraint).
class ChannelConfigConstraint final : public Constraint {
 public:
  ChannelConfigConstraint(std::string name, ConstraintType type,
                          ConstraintPriority prio)
      : Constraint(std::move(name), type, prio) {}

  bool validate(ConstraintValidationContext& ctx) override {
    const Entity& endpoint = ctx.context_entity();
    const Value& peer_ref = endpoint.get("peer");
    if (is_null(peer_ref)) return true;  // unconnected endpoint
    // Reading the peer throws ObjectUnreachable when its site is cut off
    // (the NCC case of Section 3.1).
    const Entity& peer = ctx.read(as_object(peer_ref));
    return as_int(endpoint.get("frequency")) == as_int(peer.get("frequency"));
  }
};

struct Dtms {
  /// Defines ChannelEndpoint {frequency, siteName, peer->ChannelEndpoint}
  /// with a `retune(frequency)` method that updates BOTH endpoints via a
  /// nested middleware invocation.
  static void define_classes(ClassRegistry& classes);

  /// Registers ChannelConfigConsistency (tradeable hard invariant,
  /// accepting even uncheckable threats so site operators stay available
  /// during inter-site link failures).
  static void register_constraints(
      ConstraintRepository& repository,
      SatisfactionDegree min_degree = SatisfactionDegree::Uncheckable);

  struct Channel {
    ObjectId endpoint_a;
    ObjectId endpoint_b;
  };

  /// Creates a channel between two sites; each endpoint is replicated on
  /// its site's node ONLY (strong ownership, Section 1.4).
  static Channel create_channel(Cluster& cluster, std::size_t site_a,
                                std::size_t site_b, std::int64_t frequency);

  [[nodiscard]] static std::int64_t frequency(DedisysNode& node,
                                              ObjectId endpoint);
};

}  // namespace dedisys::scenarios
