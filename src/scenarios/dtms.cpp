#include "scenarios/dtms.h"

#include "objects/entity.h"
#include "objects/method_context.h"

namespace dedisys::scenarios {

void Dtms::define_classes(ClassRegistry& classes) {
  ClassDescriptor& endpoint = classes.define("ChannelEndpoint");
  endpoint.define_property("frequency", Value{std::int64_t{0}}, "int");
  endpoint.define_property("siteName", Value{std::string{}}, "string");
  endpoint.define_property("peer", Value{}, "object");
  // Retunes the channel: updates this endpoint and — via a nested,
  // intercepted invocation — its peer, so the constraint holds afterwards.
  endpoint.define_method(
      MethodSignature{"retune", {"int"}}, MethodKind::Mutator,
      [](Entity& self, MethodContext& ctx, const std::vector<Value>& args) {
        self.set("frequency", args.at(0));
        const Value& peer = self.get("peer");
        if (!is_null(peer)) {
          ctx.objects.invoke(as_object(peer),
                             MethodSignature{"setFrequency", {"int"}},
                             {args.at(0)});
        }
        return Value{};
      });
}

void Dtms::register_constraints(ConstraintRepository& repository,
                                SatisfactionDegree min_degree) {
  auto constraint = std::make_shared<ChannelConfigConstraint>(
      "ChannelConfigConsistency", ConstraintType::HardInvariant,
      ConstraintPriority::Tradeable);
  constraint->set_min_satisfaction_degree(min_degree);
  constraint->set_description(
      "both endpoints of a voice channel must be tuned to the same "
      "frequency");

  ConstraintRegistration reg;
  reg.constraint = std::move(constraint);
  reg.context_class = "ChannelEndpoint";
  const ContextPreparation called{ContextPreparationKind::CalledObject, ""};
  reg.affected_methods.push_back(AffectedMethod{
      "ChannelEndpoint", MethodSignature{"setFrequency", {"int"}}, called});
  reg.affected_methods.push_back(AffectedMethod{
      "ChannelEndpoint", MethodSignature{"retune", {"int"}}, called});
  repository.register_constraint(std::move(reg));
}

Dtms::Channel Dtms::create_channel(Cluster& cluster, std::size_t site_a,
                                   std::size_t site_b,
                                   std::int64_t frequency) {
  DedisysNode& node_a = cluster.node(site_a);
  DedisysNode& node_b = cluster.node(site_b);

  TxScope tx(node_a.tx());
  // Site-bound objects: each endpoint lives on its site's node only.
  const ObjectId a = node_a.replication().create(
      "ChannelEndpoint", tx.id(), std::vector<NodeId>{node_a.id()});
  const ObjectId b = node_b.replication().create(
      "ChannelEndpoint", tx.id(), std::vector<NodeId>{node_b.id()});
  node_a.invoke(tx.id(), a, "setSiteName",
                {Value{"site-" + std::to_string(site_a)}});
  node_b.invoke(tx.id(), b, "setSiteName",
                {Value{"site-" + std::to_string(site_b)}});
  node_a.invoke(tx.id(), a, "setFrequency", {Value{frequency}});
  node_b.invoke(tx.id(), b, "setFrequency", {Value{frequency}});
  node_a.invoke(tx.id(), a, "setPeer", {Value{b}});
  node_b.invoke(tx.id(), b, "setPeer", {Value{a}});
  tx.commit();
  return Channel{a, b};
}

std::int64_t Dtms::frequency(DedisysNode& node, ObjectId endpoint) {
  TxScope tx(node.tx());
  const Value v = node.invoke(tx.id(), endpoint, "getFrequency");
  tx.commit();
  return as_int(v);
}

}  // namespace dedisys::scenarios
