// Full flight-booking object model (Fig. 1.3): Flight, Person and Ticket
// entities with relations — tickets are first-class objects referencing a
// flight and a passenger, and the ticket-constraint counts them through a
// query ("number of sold tickets must be <= number of seats").
//
// Compared to the counter-based scenario in flight.h, this model exercises
// inter-class constraints over object sets: validation enumerates every
// Ticket (query-based affected objects), so staleness of ANY ticket or
// flight replica degrades the check.
#pragma once

#include <cstdint>
#include <vector>

#include "constraints/constraint.h"
#include "constraints/repository.h"
#include "middleware/cluster.h"

namespace dedisys::scenarios {

/// The ticket-constraint over the object graph: tickets referencing the
/// context flight must not exceed its seats.
class TicketCountConstraint final : public Constraint {
 public:
  TicketCountConstraint(std::string name, ConstraintType type,
                        ConstraintPriority prio)
      : Constraint(std::move(name), type, prio) {}

  bool validate(ConstraintValidationContext& ctx) override {
    const Entity& flight = ctx.context_entity();
    std::int64_t sold = 0;
    for (ObjectId id : ctx.objects_of("Ticket")) {
      const Entity& ticket = ctx.read(id);
      const Value& ref = ticket.get("flight");
      if (!is_null(ref) && as_object(ref) == ctx.context_object()) ++sold;
    }
    return sold <= as_int(flight.get("seats"));
  }
};

struct FlightBookingFull {
  /// Defines Flight {seats}, Person {name}, Ticket {flight->, person->}.
  static void define_classes(ClassRegistry& classes);

  /// Registers TicketCountConstraint: context class Flight, affected by
  /// Ticket.setFlight (a new booking materializes when the ticket is
  /// linked to its flight).
  static void register_constraints(
      ConstraintRepository& repository,
      SatisfactionDegree min_degree = SatisfactionDegree::PossiblySatisfied);

  static ObjectId create_flight(DedisysNode& node, std::int64_t seats);
  static ObjectId create_person(DedisysNode& node, const std::string& name);

  /// Books one ticket: creates the Ticket entity and links it to flight
  /// and passenger in one transaction.  Returns the ticket id; throws on
  /// violation / rejected threat (the transaction rolls back and the
  /// ticket is destroyed).
  static ObjectId book(DedisysNode& node, ObjectId flight, ObjectId person);

  /// Cancels a booking (destroys the ticket object).
  static void cancel(DedisysNode& node, ObjectId ticket);

  /// Tickets currently referencing `flight`.
  static std::vector<ObjectId> tickets_of(Cluster& cluster, DedisysNode& node,
                                          ObjectId flight);
};

}  // namespace dedisys::scenarios
