// Script-based test application (the "DedisysTest" driver of Section 5.1,
// [Ke07]) plus a virtual-time failure schedule.
//
// "In order to ensure repeatability of the tests, we used the script-based
// DedisysTest application" — workloads, failure injection and assertions
// are written as line-oriented scripts and replayed deterministically:
//
//   # comments and blank lines are ignored
//   node 0                       switch the acting node
//   create TestEntity 100        create objects (become the working set)
//   invoke setValue 100 hello    invoke a method over the working set
//   invoke emptyThreat 50        (one committed transaction per op)
//   negotiate accept             dynamic accept-all | reject | static
//   split 0,1|2                  inject a partition
//   heal                         repair all links
//   crash 2 / recover 2          node pause-crash / recovery
//   reconcile                    run both reconciliation phases
//   delete                       delete the working set
//   expect-threats 1             assert stored threat identities
//   expect-mode degraded         assert acting node's system mode
//   expect-attr <i> attr value   assert attribute of working-set object i
//
// Every workload command reports ops per simulated second.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "middleware/cluster.h"

namespace dedisys::scenarios {

struct ScriptCommandResult {
  std::size_t line = 0;
  std::string command;
  std::size_t ops = 0;
  SimDuration elapsed = 0;

  [[nodiscard]] double ops_per_second() const {
    return elapsed > 0 ? static_cast<double>(ops) * 1e6 /
                             static_cast<double>(elapsed)
                       : 0.0;
  }
};

struct ScriptReport {
  std::vector<ScriptCommandResult> commands;
  std::size_t committed_ops = 0;
  std::size_t aborted_ops = 0;
};

class ScriptRunner {
 public:
  explicit ScriptRunner(Cluster& cluster) : cluster_(&cluster) {}

  /// Executes the script; throws ConfigError on syntax errors and
  /// DedisysError on failed expect-* assertions.
  ScriptReport run(const std::string& script);

 private:
  enum class Negotiation { Static, Accept, Reject };

  void execute(const std::vector<std::string>& words, std::size_t line,
               ScriptReport& report);
  DedisysNode& acting_node() { return cluster_->node(acting_); }
  void run_invocations(const std::string& method, std::size_t count,
                       std::vector<Value> args, ScriptReport& report);

  Cluster* cluster_;
  std::size_t acting_ = 0;
  Negotiation negotiation_ = Negotiation::Static;
  std::vector<ObjectId> working_set_;
};

/// Time-driven failure injection: failures fire at virtual timestamps
/// through the cluster's event queue (deterministic fault schedules).
class FailureSchedule {
 public:
  explicit FailureSchedule(Cluster& cluster) : cluster_(&cluster) {}

  FailureSchedule& split_at(SimTime when,
                            std::vector<std::vector<std::size_t>> groups);
  FailureSchedule& heal_at(SimTime when);
  FailureSchedule& crash_at(SimTime when, std::size_t node);
  FailureSchedule& recover_at(SimTime when, std::size_t node);

 private:
  Cluster* cluster_;
};

}  // namespace dedisys::scenarios
