// Umbrella header: the public API of the DeDiSys-C++ middleware.
//
// #include "dedisys.h" pulls in everything an application developer needs:
// the cluster harness, explicit runtime constraints (hand-written or OCL),
// descriptor loading, negotiation and reconciliation callbacks, threat
// inspection, the Web callback bridges and the scripting driver.
#pragma once

// Core middleware
#include "middleware/cluster.h"   // Cluster, ClusterConfig, DedisysNode
#include "middleware/admin.h"     // AdminConsole
#include "middleware/metrics.h"   // collect_metrics, render_metrics
#include "middleware/mode.h"      // SystemMode

// Constraints
#include "constraints/ccmgr.h"           // ConstraintConsistencyManager
#include "constraints/config.h"          // XML descriptors, ConstraintFactory
#include "constraints/config_writer.h"   // descriptor serialization
#include "constraints/constraint.h"      // Constraint, FunctionConstraint
#include "constraints/negotiation.h"     // NegotiationHandler
#include "constraints/ocl_constraint.h"  // OclConstraint
#include "constraints/repository.h"      // ConstraintRepository
#include "constraints/satisfaction.h"    // SatisfactionDegree
#include "constraints/threats.h"         // ConsistencyThreat, ThreatStore

// Replication
#include "replication/adapt.h"       // component monitors
#include "replication/manager.h"     // ReplicationManager
#include "replication/protocol.h"    // ReplicationProtocol
#include "replication/reconciler.h"  // ReplicaConsistencyHandler

// Transactions and persistence
#include "persist/snapshot.h"  // save_snapshot / load_snapshot
#include "tx/tx_manager.h"     // TransactionManager, TxScope

// Web front-ends
#include "web/bridge.h"        // request/response negotiation bridge
#include "web/push_channel.h"  // persistent-connection push callbacks

// Utilities
#include "util/errors.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_clock.h"
