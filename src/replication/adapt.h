// ADAPT replication-framework extension points (Section 4.3, [BBM+04]).
//
// The paper's replication protocol plugs into the application server
// through the ADAPT framework's *component monitors*:
//   * the client-side component monitor "can redirect calls to different
//     servers",
//   * the server-side component monitor is notified of component events
//     (creation of, calls to, deletion of entity beans) before and after
//     control passes to the bean implementation.
//
// This header provides those extension points for custom replication
// behaviour on top of the built-in protocols, plus a ready-made
// read-balancing client monitor.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "objects/invocation.h"
#include "util/ids.h"

namespace dedisys {

/// Client-side component monitor: may redirect an invocation to a
/// different node than the router planned (e.g. to balance read load
/// across replicas).
class ClientComponentMonitor {
 public:
  virtual ~ClientComponentMonitor() = default;

  /// Returns the node the invocation should execute on.  `planned` is the
  /// router's choice; `replicas` the nodes holding a copy.  Writes must
  /// not be redirected away from the primary — the kernel ignores write
  /// redirections.
  virtual NodeId redirect(const Invocation& inv, NodeId planned,
                          const std::vector<NodeId>& replicas) {
    (void)inv;
    (void)replicas;
    return planned;
  }
};

/// Server-side component monitor: observes component lifecycle and
/// invocation processing on the node it is registered with.
class ServerComponentMonitor {
 public:
  virtual ~ServerComponentMonitor() = default;

  virtual void on_created(ObjectId id, const std::string& class_name) {
    (void)id;
    (void)class_name;
  }
  virtual void before_invocation(const Invocation& inv) { (void)inv; }
  virtual void after_invocation(const Invocation& inv) { (void)inv; }
  virtual void on_deleted(ObjectId id) { (void)id; }
};

/// Ready-made client monitor distributing READ invocations round-robin
/// over the reachable replicas (the backups serve no update load in the
/// paper's measurements — "the backup nodes show no CPU load for
/// non-update operations and hence can serve further client requests",
/// Section 5.1).
class RoundRobinReadBalancer final : public ClientComponentMonitor {
 public:
  NodeId redirect(const Invocation& inv, NodeId planned,
                  const std::vector<NodeId>& replicas) override {
    if (inv.is_write || replicas.empty()) return planned;
    return replicas[next_++ % replicas.size()];
  }

  [[nodiscard]] std::size_t dispatched() const { return next_; }

 private:
  std::size_t next_ = 0;
};

}  // namespace dedisys
