// Replication protocols and the shared object directory.
//
// Three protocols are provided:
//   * PrimaryBackup — classic primary/backup with the primary-partition
//     rule: writes only where the designated primary is reachable; other
//     partitions are read-only (the conventional baseline of Section 1.1).
//   * PrimaryPartition (P4) — the primary-per-partition protocol of
//     Section 4.3: during degraded mode every partition elects a temporary
//     primary per object, so writes continue everywhere at the price of
//     consistency threats.
//   * AdaptiveVoting — the quorum-based protocol referenced as further
//     reading: the majority partition keeps reliable (quorum) writes while
//     minority partitions operate with adapted quorums and threats.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/errors.h"
#include "util/ids.h"

namespace dedisys {

enum class ReplicationProtocol {
  PrimaryBackup,
  PrimaryPartition,  // P4
  AdaptiveVoting,
};

[[nodiscard]] inline std::string to_string(ReplicationProtocol p) {
  switch (p) {
    case ReplicationProtocol::PrimaryBackup: return "primary-backup";
    case ReplicationProtocol::PrimaryPartition: return "P4";
    case ReplicationProtocol::AdaptiveVoting: return "adaptive-voting";
  }
  return "?";
}

/// Cluster-wide object location knowledge (in a real deployment this is
/// part of the replicated naming/location service).  Maps each logical
/// object to its class, designated primary and replica set.
class ObjectDirectory {
 public:
  struct Entry {
    std::string class_name;
    NodeId designated_primary;
    std::vector<NodeId> replicas;  ///< nodes hosting a copy, sorted
    /// Owning application (Section 5.3: the constraint repository is
    /// application-specific); empty = the default application.
    std::string application;
  };

  ObjectId allocate() { return ObjectId{next_id_++}; }

  void add(ObjectId id, Entry entry) { entries_[id] = std::move(entry); }

  void remove(ObjectId id) { entries_.erase(id); }

  [[nodiscard]] bool contains(ObjectId id) const {
    return entries_.count(id) != 0;
  }

  [[nodiscard]] const Entry& get(ObjectId id) const {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      throw ObjectUnreachable("unknown object " + to_string(id));
    }
    return it->second;
  }

  [[nodiscard]] std::vector<ObjectId> all_objects() const {
    std::vector<ObjectId> out;
    out.reserve(entries_.size());
    for (const auto& [id, e] : entries_) out.push_back(id);
    return out;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::uint64_t next_id_ = 1;
  std::unordered_map<ObjectId, Entry> entries_;
};

}  // namespace dedisys
