#include "replication/manager.h"

#include <algorithm>

#include "util/errors.h"

namespace dedisys {

ReplicationManager::ReplicationManager(
    NodeId self, const ClassRegistry& classes, GroupCommunication& gc,
    GroupMembershipService& gms, RecordStore& db, ReplicaHistoryStore& history,
    std::shared_ptr<ObjectDirectory> directory, ReplicationProtocol protocol)
    : self_(self),
      classes_(classes),
      gc_(gc),
      gms_(gms),
      db_(db),
      history_(&history),
      directory_(std::move(directory)),
      protocol_(protocol) {}

void ReplicationManager::connect_peers(std::vector<ReplicationManager*> peers) {
  peers_.clear();
  for (auto* p : peers) {
    if (p != nullptr) peers_[p->self()] = p;
  }
}

void ReplicationManager::set_degraded(bool degraded) {
  if (degraded && !degraded_) degraded_updates_.clear();
  if (degraded) degraded_view_members_ = gms_.current_view().members;
  degraded_ = degraded;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

ObjectId ReplicationManager::create(
    const std::string& class_name, TxId /*tx*/,
    std::optional<std::vector<NodeId>> replica_nodes,
    const std::string& application) {
  const ClassDescriptor& cls = classes_.get(class_name);
  const ObjectId id = directory_->allocate();

  std::vector<NodeId> replicas =
      replication_enabled_ ? replica_nodes.value_or(gc_.runtime().nodes())
                           : std::vector<NodeId>{self_};
  std::sort(replicas.begin(), replicas.end());
  directory_->add(id, ObjectDirectory::Entry{class_name, self_, replicas,
                                             application});

  replicas_[id] = std::make_unique<Entity>(id, cls);

  if (replication_enabled_) {
    // Replica bookkeeping: JNDI name, primary key and the serialized
    // creation request must be persisted (Section 5.1).
    gc_.runtime().charge(gc_.runtime().cost().replica_create_bookkeeping);
    db_.put("replicas", to_string(id),
            AttributeMap{{"class", Value{class_name}},
                         {"primary", Value{static_cast<std::int64_t>(
                                         self_.value())}}});
    // Propagate the creation synchronously to reachable replica holders.
    const EntitySnapshot snap = replicas_[id]->snapshot();
    gc_.multicast(self_, reachable_replicas(directory_->get(id)),
                  [&](NodeId n) { peer(n)->apply_created(snap); });
  }
  return id;
}

void ReplicationManager::destroy(ObjectId id, TxId /*tx*/) {
  const ObjectDirectory::Entry entry = directory_->get(id);
  if (replication_enabled_) {
    gc_.multicast(self_, reachable_replicas(entry),
                  [&](NodeId n) { peer(n)->apply_destroyed(id); });
    db_.erase("replicas", to_string(id));
  }
  replicas_.erase(id);
  directory_->remove(id);
}

// ---------------------------------------------------------------------------
// Replica access and routing
// ---------------------------------------------------------------------------

Entity& ReplicationManager::local_replica(ObjectId id) {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    throw ObjectUnreachable("no local replica of " + to_string(id) +
                            " on node " + to_string(self_));
  }
  return *it->second;
}

const Entity& ReplicationManager::local_replica(ObjectId id) const {
  auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    throw ObjectUnreachable("no local replica of " + to_string(id) +
                            " on node " + to_string(self_));
  }
  return *it->second;
}

bool ReplicationManager::partition_has_majority() const {
  return gms_.current_view().weight_fraction > 0.5;
}

std::vector<NodeId> ReplicationManager::reachable_replicas(
    const ObjectDirectory::Entry& entry) const {
  const View& view = gms_.current_view();
  std::vector<NodeId> out;
  for (NodeId n : entry.replicas) {
    if (view.contains(n)) out.push_back(n);
  }
  return out;
}

NodeId ReplicationManager::temporary_primary(
    const ObjectDirectory::Entry& entry) const {
  const View& view = gms_.current_view();
  if (view.contains(entry.designated_primary)) {
    return entry.designated_primary;
  }
  const std::vector<NodeId> here = reachable_replicas(entry);
  if (here.empty()) {
    throw ObjectUnreachable("no reachable replica to act as primary");
  }
  return here.front();  // deterministic: lowest reachable replica node
}

NodeId ReplicationManager::execution_node(ObjectId id, bool is_write) const {
  const ObjectDirectory::Entry& entry = directory_->get(id);

  if (!is_write) {
    // Reads are always performed locally when a replica exists
    // (Section 4.3); otherwise on the nearest reachable replica.
    if (has_local_replica(id) && gms_.current_view().contains(self_)) {
      return self_;
    }
    const std::vector<NodeId> here = reachable_replicas(entry);
    if (here.empty()) {
      throw ObjectUnreachable("no reachable replica of " + to_string(id));
    }
    return here.front();
  }

  switch (protocol_) {
    case ReplicationProtocol::PrimaryBackup:
      // Primary-partition rule: only the majority partition may write; it
      // re-elects a primary when the designated one is unreachable.
      if (!degraded_) return temporary_primary(entry);
      if (!partition_has_majority()) {
        throw ObjectUnreachable(
            "write blocked: not in the primary partition (primary-backup)");
      }
      return temporary_primary(entry);
    case ReplicationProtocol::PrimaryPartition:
      // P4: every partition elects a temporary primary per object.
      return temporary_primary(entry);
    case ReplicationProtocol::AdaptiveVoting:
      // Adapted quorums allow writes in every partition, charged with an
      // extra quorum round (performed in propagate_update).
      return temporary_primary(entry);
  }
  throw ObjectUnreachable("unknown protocol");
}

// ---------------------------------------------------------------------------
// Update propagation
// ---------------------------------------------------------------------------

void ReplicationManager::propagate_update(ObjectId id, TxId tx) {
  if (!replication_enabled_) return;
  Entity& primary_copy = local_replica(id);
  Runtime& rt = gc_.runtime();
  // Replication span: the multicast leg and every backup apply nested
  // inside it inherit the writing invocation's trace.
  obs::SpanGuard span_guard(obs_, rt, "replication.propagate", self_, id,
                            tx);
  const SimTime propagate_start = rt.now();

  // Persist per-replica version metadata for this update.
  db_.put("replica_versions", to_string(id),
          AttributeMap{{"version", Value{static_cast<std::int64_t>(
                                       primary_copy.version())}}});
  rt.charge(rt.cost().state_extraction);
  // Stamp with this node's *local* clock: under fault::ClockSkew the stamp
  // feeding the Section 4.2.1 freshness estimation drifts, while versions
  // (and hence reconciliation) stay skew-proof.
  primary_copy.touch(rt.local_now(self_));
  const EntitySnapshot snap = primary_copy.snapshot();

  if (protocol_ == ReplicationProtocol::AdaptiveVoting) {
    // Gather a write quorum before applying (one extra message round).
    rt.charge(rt.cost().rpc_latency * 2);
  }

  const std::vector<NodeId> targets =
      reachable_replicas(directory_->get(id));
  std::size_t backups = 0;
  for (NodeId n : targets) {
    if (n != self_) ++backups;
  }
  const std::size_t reached = gc_.multicast(
      self_, targets, [&](NodeId n) { peer(n)->apply_propagated(snap, tx); });
  if (reached > 0) {
    // Backups apply the update in parallel; the primary waits for the
    // slowest confirmation (Section 5.1).
    rt.charge(rt.cost().backup_apply);
  }
  ++stats_.updates_propagated;
  if (obs::on(obs_)) {
    obs_->event(rt.now(), obs::TraceEventKind::ReplicaPropagate, self_, id,
                tx, "update", std::to_string(reached) + " backups");
    obs_->latency("replica.propagate", rt.now() - propagate_start);
  }

  // Mark the object for reconciliation when degraded, and also when link
  // faults made the propagation incomplete (retries exhausted on some
  // backup): the reconciler then redelivers the latest state after heal.
  if (degraded_ || reached < backups) {
    degraded_updates_.insert(id);
    if (degraded_ && keep_history_) {
      history_->append(snap);
      ++stats_.history_records;
    }
  }
}

void ReplicationManager::propagate_restore(ObjectId id) {
  if (!replication_enabled_) return;
  Entity& local = local_replica(id);
  Runtime& rt = gc_.runtime();
  obs::SpanGuard span_guard(obs_, rt, "replication.restore", self_, id);
  rt.charge(rt.cost().state_extraction);
  local.touch(rt.local_now(self_));
  const EntitySnapshot snap = local.snapshot();
  const std::size_t reached =
      gc_.multicast(self_, reachable_replicas(directory_->get(id)),
                    [&](NodeId n) {
                      ReplicationManager* p = peer(n);
                      if (p != nullptr) {
                        p->apply_snapshot(snap);
                        // the aborted update never happened, logically
                        p->degraded_updates_.erase(snap.id);
                      }
                    });
  if (reached > 0) rt.charge(rt.cost().backup_apply);
  // Undo also cancels this object's degraded-write mark on this node: the
  // net effect of the aborted transaction is no update.
  degraded_updates_.erase(id);
}

void ReplicationManager::replicate_threat_record() {
  const View& view = gms_.current_view();
  gc_.multicast(self_, view.members, [&](NodeId n) {
    ReplicationManager* p = peer(n);
    if (p != nullptr) {
      // Each partition member durably stores the same three records as
      // the originating node (threat row + associated-object rows).
      const std::string key = to_string(self_) + "/" +
                              std::to_string(++threat_replica_counter_);
      p->db_.put("threat_replicas", key, {});
      p->db_.put("threat_replicas", key + "/objects", {});
      p->db_.put("threat_replicas", key + "/appdata", {});
    }
  });
}

void ReplicationManager::apply_propagated(const EntitySnapshot& snap,
                                          TxId tx) {
  Runtime& rt = gc_.runtime();
  // Backup-side span: runs inside the primary's multicast deliver call, so
  // it nests under the gcs.multicast span of the originating trace.
  obs::SpanGuard span_guard(obs_, rt, "replication.apply", self_, snap.id,
                            tx);
  auto it = replicas_.find(snap.id);
  const bool created = it == replicas_.end();
  if (created) {
    apply_created(snap);
    it = replicas_.find(snap.id);
  }
  // Idempotent application: every update carries the entity version, so a
  // duplicated or retransmitted propagation (same or older version than
  // the local copy) is a no-op.  Distinct updates of one object always
  // carry distinct versions, hence this never masks real state.
  if (!created && it->second->version() >= snap.version) {
    ++stats_.stale_skipped;
    if (obs::on(obs_)) {
      obs_->event(rt.now(), obs::TraceEventKind::MsgDeduped, self_, snap.id,
                  {}, "replication",
                  "stale propagation v" + std::to_string(snap.version) +
                      " <= local v" + std::to_string(it->second->version()));
    }
    return;
  }
  it->second->restore(snap);
  it->second->touch(rt.local_now(self_));
  ++stats_.backups_applied;
  if (degraded_) degraded_updates_.insert(snap.id);
}

void ReplicationManager::apply_created(const EntitySnapshot& snap) {
  if (replicas_.count(snap.id) != 0) return;
  const ClassDescriptor& cls = classes_.get(snap.class_name);
  auto entity = std::make_unique<Entity>(snap.id, cls);
  entity->restore(snap);
  replicas_[snap.id] = std::move(entity);
}

void ReplicationManager::apply_destroyed(ObjectId id) { replicas_.erase(id); }

void ReplicationManager::apply_snapshot(const EntitySnapshot& snap) {
  auto it = replicas_.find(snap.id);
  if (it == replicas_.end()) {
    apply_created(snap);
  } else {
    it->second->restore(snap);
  }
}

// ---------------------------------------------------------------------------
// StalenessOracle
// ---------------------------------------------------------------------------

bool ReplicationManager::possibly_stale(ObjectId id) const {
  if (!degraded_) return false;
  if (!directory_->contains(id)) return false;
  const ObjectDirectory::Entry& entry = directory_->get(id);
  const View& view = gms_.current_view();
  bool all_here = true;
  for (NodeId n : entry.replicas) {
    if (!view.contains(n)) {
      all_here = false;
      break;
    }
  }
  if (all_here) return false;  // no other partition can update this object

  switch (protocol_) {
    case ReplicationProtocol::PrimaryBackup:
      // Writes only happen in the majority partition; inside it, local
      // views are authoritative.
      return !partition_has_majority();
    case ReplicationProtocol::PrimaryPartition:
    case ReplicationProtocol::AdaptiveVoting:
      // Writes may happen in every partition (Section 3.1: "objects are
      // possibly stale in every network partition").
      return true;
  }
  return true;
}

bool ReplicationManager::reachable(ObjectId id) const {
  if (!directory_->contains(id)) return false;
  if (has_local_replica(id)) return true;
  return !reachable_replicas(directory_->get(id)).empty();
}

ReplicationManager* ReplicationManager::peer(NodeId node) const {
  auto it = peers_.find(node);
  return it == peers_.end() ? nullptr : it->second;
}

}  // namespace dedisys
