// Per-node replication manager (the replication service of Section 4.3).
//
// Responsibilities:
//   * hosting local replicas of logical objects,
//   * routing invocations (reads local, writes to the — possibly
//     temporary — primary),
//   * synchronous update propagation from the primary to all reachable
//     backups over group communication,
//   * replica history capture during degraded mode (for rollback-based
//     reconciliation),
//   * answering the CCMgr's staleness/reachability questions
//     (StalenessOracle), which drive the satisfaction-degree derivation.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "constraints/validation_context.h"
#include "gcs/group_comm.h"
#include "gcs/membership.h"
#include "objects/entity.h"
#include "obs/observability.h"
#include "persist/history_store.h"
#include "persist/record_store.h"
#include "replication/protocol.h"
#include "tx/tx_manager.h"
#include "util/ids.h"

namespace dedisys {

class ReplicationManager final : public StalenessOracle {
 public:
  ReplicationManager(NodeId self, const ClassRegistry& classes,
                     GroupCommunication& gc, GroupMembershipService& gms,
                     RecordStore& db, ReplicaHistoryStore& history,
                     std::shared_ptr<ObjectDirectory> directory,
                     ReplicationProtocol protocol);

  /// Wires the in-process peer managers (delivery targets for multicasts).
  void connect_peers(std::vector<ReplicationManager*> peers);

  /// Wires the cluster's observability hub; update propagations are then
  /// recorded as replica.propagate trace events with a propagate latency.
  void set_observability(obs::Observability* obs) { obs_ = obs; }

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] ReplicationProtocol protocol() const { return protocol_; }
  [[nodiscard]] ObjectDirectory& directory() { return *directory_; }

  // -- mode (driven by the middleware kernel on view changes) ---------------

  void set_degraded(bool degraded);
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Enables/disables replica history capture during degraded mode
  /// (Section 5.5.1 "reduced history").
  void set_keep_history(bool keep) { keep_history_ = keep; }
  [[nodiscard]] bool keep_history() const { return keep_history_; }

  /// Disables replication entirely (the "No DeDiSys" baseline): no replica
  /// bookkeeping, no update propagation, objects live on this node only.
  void set_replication_enabled(bool enabled) { replication_enabled_ = enabled; }
  [[nodiscard]] bool replication_enabled() const {
    return replication_enabled_;
  }

  // -- object lifecycle -------------------------------------------------------

  /// Creates a logical object replicated on `replica_nodes` (default: all
  /// cluster nodes), with this node as designated primary.  Creation is
  /// propagated synchronously to reachable replicas; persisting the
  /// replica bookkeeping is the dominant cost (Section 5.1).
  ObjectId create(const std::string& class_name, TxId tx,
                  std::optional<std::vector<NodeId>> replica_nodes =
                      std::nullopt,
                  const std::string& application = "");

  /// Deletes a logical object from all reachable replicas.
  void destroy(ObjectId id, TxId tx);

  // -- replica access -----------------------------------------------------------

  [[nodiscard]] bool has_local_replica(ObjectId id) const {
    return replicas_.count(id) != 0;
  }

  [[nodiscard]] Entity& local_replica(ObjectId id);
  [[nodiscard]] const Entity& local_replica(ObjectId id) const;

  /// Node that must execute an invocation on `id`:
  ///   reads  -> locally when a replica exists, else nearest replica;
  ///   writes -> the (temporary) primary; throws ObjectUnreachable when the
  ///             protocol forbids writing in this partition.
  [[nodiscard]] NodeId execution_node(ObjectId id, bool is_write) const;

  /// Synchronous update propagation after a write on the primary
  /// (Section 4.3).  Captures degraded-mode history when enabled.
  void propagate_update(ObjectId id, TxId tx);

  /// Propagates the CURRENT local state to reachable backups without
  /// degraded-mode bookkeeping — used when a transaction rollback restores
  /// a pre-transaction state (an undo is not a logical update and must not
  /// register as a conflicting degraded write).
  void propagate_restore(ObjectId id);

  /// Propagates a threat record to all reachable partition members
  /// (accepted threats are replicated, Section 5.1).
  void replicate_threat_record();

  // -- StalenessOracle ------------------------------------------------------------

  bool possibly_stale(ObjectId id) const override;
  bool reachable(ObjectId id) const override;

  // -- reconciliation support ----------------------------------------------------

  /// Objects written on this node during the current degraded period.
  [[nodiscard]] const std::unordered_set<ObjectId>& degraded_updates() const {
    return degraded_updates_;
  }
  void clear_degraded_updates() { degraded_updates_.clear(); }

  /// View membership recorded while degraded — the reconciliation driver
  /// groups nodes by it to derive the former partitions when no explicit
  /// link-failure groups were injected (e.g. node crash/recovery).
  [[nodiscard]] const std::vector<NodeId>& degraded_view_members() const {
    return degraded_view_members_;
  }

  /// Applies a reconciled snapshot locally (no propagation).
  void apply_snapshot(const EntitySnapshot& snap);

  [[nodiscard]] ReplicaHistoryStore& history() { return *history_; }

  /// Crash support: drops the volatile replica copies (the in-memory
  /// entity state lost in a pause-crash).  Durable bookkeeping — the
  /// node's record store, replica-version metadata and degraded-update
  /// marks — survives, so a later restart can rebuild the replicas from
  /// peers or from the durable entity table.
  void drop_volatile() { replicas_.clear(); }

  /// Restart support: re-adopts a replica rebuilt from a peer snapshot or
  /// from durable state (no propagation, no degraded bookkeeping).
  void adopt_replica(const EntitySnapshot& snap) { apply_snapshot(snap); }

  // -- statistics -------------------------------------------------------------------
  struct Stats {
    std::size_t updates_propagated = 0;
    std::size_t backups_applied = 0;
    std::size_t history_records = 0;
    std::size_t stale_skipped = 0;  ///< duplicate/stale propagations ignored
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] bool partition_has_majority() const;
  [[nodiscard]] NodeId temporary_primary(
      const ObjectDirectory::Entry& entry) const;
  [[nodiscard]] std::vector<NodeId> reachable_replicas(
      const ObjectDirectory::Entry& entry) const;
  ReplicationManager* peer(NodeId node) const;

  /// Backup-side handler for a propagated update.
  void apply_propagated(const EntitySnapshot& snap, TxId tx);
  /// Backup-side handler for a propagated creation.
  void apply_created(const EntitySnapshot& snap);
  /// Backup-side handler for a propagated deletion.
  void apply_destroyed(ObjectId id);

  NodeId self_;
  const ClassRegistry& classes_;
  GroupCommunication& gc_;
  GroupMembershipService& gms_;
  RecordStore& db_;
  ReplicaHistoryStore* history_;
  std::shared_ptr<ObjectDirectory> directory_;
  ReplicationProtocol protocol_;

  std::unordered_map<ObjectId, std::unique_ptr<Entity>> replicas_;
  std::unordered_map<NodeId, ReplicationManager*> peers_;
  obs::Observability* obs_ = nullptr;

  bool degraded_ = false;
  bool keep_history_ = true;
  bool replication_enabled_ = true;
  std::uint64_t threat_replica_counter_ = 0;  ///< per-instance, deterministic
  std::unordered_set<ObjectId> degraded_updates_;
  std::vector<NodeId> degraded_view_members_;
  Stats stats_;
};

}  // namespace dedisys
