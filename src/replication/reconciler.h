// Replica reconciliation (first step of the reconciliation phase, Fig. 4.6).
//
// After previously unreachable nodes re-join, missed updates are exchanged
// between the former partitions.  Write-write conflicts (the same object
// updated in two or more partitions) are resolved through the
// application-provided replica consistency handler, or a generic
// latest-version-wins policy.  Only after a replica-consistent state is
// re-established does the CCMgr re-evaluate consistency threats
// (Section 5.2 motivates this staging).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "objects/entity.h"
#include "replication/manager.h"
#include "util/ids.h"

namespace dedisys {

/// Application callback producing a replica-consistent state out of
/// conflicting snapshots (Section 4.4).
class ReplicaConsistencyHandler {
 public:
  virtual ~ReplicaConsistencyHandler() = default;
  virtual EntitySnapshot reconcile_replicas(
      ObjectId id, const std::vector<EntitySnapshot>& candidates) = 0;
};

/// Generic policy: the replica with the highest version (i.e. the most
/// updates during degraded mode) wins.
class LatestVersionWins final : public ReplicaConsistencyHandler {
 public:
  EntitySnapshot reconcile_replicas(
      ObjectId, const std::vector<EntitySnapshot>& candidates) override;
};

struct ReplicaReconcileStats {
  std::size_t objects_examined = 0;
  std::size_t updates_propagated = 0;
  std::size_t conflicts = 0;
};

class ReplicaReconciler {
 public:
  ReplicaReconciler(std::vector<ReplicationManager*> managers, Runtime& rt)
      : managers_(std::move(managers)), rt_(&rt) {}

  /// Propagates missed updates between the given former partitions and
  /// resolves write-write conflicts.  `handler` may be null (generic
  /// latest-version-wins policy applies).
  ReplicaReconcileStats reconcile(
      const std::vector<std::vector<NodeId>>& former_partitions,
      ReplicaConsistencyHandler* handler);

  /// Whether the last reconcile() detected a write-write conflict on `id`.
  [[nodiscard]] bool had_conflict(ObjectId id) const {
    return conflicts_.count(id) != 0;
  }

  [[nodiscard]] const std::unordered_set<ObjectId>& conflicts() const {
    return conflicts_;
  }

  /// Rollback-based resolution (Section 3.3): walks historical states of
  /// the affected objects newest-to-oldest, undoing one degraded-mode
  /// update at a time, until `is_consistent` reports a consistent state.
  /// Leaves the first consistent state applied and returns true; restores
  /// the pre-search state and returns false when none is found.
  bool try_rollback_search(const std::vector<ObjectId>& affected_objects,
                           const std::function<bool()>& is_consistent);

  /// Clears per-degraded-period bookkeeping after full reconciliation.
  void finish();

 private:
  /// Latest snapshot of `id` among the nodes of `partition` (by version);
  /// nullopt when no replica exists there.
  std::optional<EntitySnapshot> latest_in_partition(
      ObjectId id, const std::vector<NodeId>& partition) const;

  /// Whether any node of `partition` recorded a degraded-mode write of `id`.
  bool updated_in_partition(ObjectId id,
                            const std::vector<NodeId>& partition) const;

  ReplicationManager* manager_of(NodeId node) const;

  /// Applies a snapshot on every manager, charging one propagation round.
  void apply_everywhere(const EntitySnapshot& snap);

  std::vector<ReplicationManager*> managers_;
  Runtime* rt_;
  std::unordered_set<ObjectId> conflicts_;
};

}  // namespace dedisys
