#include "replication/reconciler.h"

#include <algorithm>

#include "util/errors.h"

namespace dedisys {

EntitySnapshot LatestVersionWins::reconcile_replicas(
    ObjectId, const std::vector<EntitySnapshot>& candidates) {
  if (candidates.empty()) {
    throw DedisysError("no candidate replicas to reconcile");
  }
  const EntitySnapshot* best = &candidates.front();
  for (const EntitySnapshot& c : candidates) {
    if (c.version > best->version) best = &c;
  }
  return *best;
}

ReplicationManager* ReplicaReconciler::manager_of(NodeId node) const {
  for (auto* m : managers_) {
    if (m->self() == node) return m;
  }
  return nullptr;
}

std::optional<EntitySnapshot> ReplicaReconciler::latest_in_partition(
    ObjectId id, const std::vector<NodeId>& partition) const {
  std::optional<EntitySnapshot> best;
  for (NodeId n : partition) {
    ReplicationManager* m = manager_of(n);
    if (m == nullptr || !m->has_local_replica(id)) continue;
    EntitySnapshot snap = m->local_replica(id).snapshot();
    if (!best || snap.version > best->version) best = std::move(snap);
  }
  return best;
}

bool ReplicaReconciler::updated_in_partition(
    ObjectId id, const std::vector<NodeId>& partition) const {
  for (NodeId n : partition) {
    ReplicationManager* m = manager_of(n);
    if (m != nullptr && m->degraded_updates().count(id) != 0) return true;
  }
  return false;
}

void ReplicaReconciler::apply_everywhere(const EntitySnapshot& snap) {
  // One propagation round to the object's replica group: multicast plus
  // per-receiver apply.  The directory's replica list confines sharded
  // entities to their group (in a fully-replicated cluster it names every
  // node, so this is the classic cluster-wide round); applying creates the
  // replica where it is missing, which re-materializes creates a former
  // partition missed.
  ObjectDirectory& dir = managers_.front()->directory();
  std::vector<ReplicationManager*> targets;
  if (dir.contains(snap.id)) {
    const auto& replicas = dir.get(snap.id).replicas;
    for (auto* m : managers_) {
      if (std::find(replicas.begin(), replicas.end(), m->self()) !=
          replicas.end()) {
        targets.push_back(m);
      }
    }
  } else {
    targets = managers_;
  }
  rt_->charge(rt_->cost().multicast_base +
                  static_cast<SimDuration>(targets.size()) *
                      (rt_->cost().multicast_per_receiver + rt_->cost().backup_apply));
  for (auto* m : targets) m->apply_snapshot(snap);
}

ReplicaReconcileStats ReplicaReconciler::reconcile(
    const std::vector<std::vector<NodeId>>& former_partitions,
    ReplicaConsistencyHandler* handler) {
  ReplicaReconcileStats stats;
  conflicts_.clear();
  LatestVersionWins generic_policy;
  ReplicaConsistencyHandler& policy =
      handler != nullptr ? *handler : static_cast<ReplicaConsistencyHandler&>(
                                          generic_policy);
  if (managers_.empty()) return stats;

  for (ObjectId id : managers_.front()->directory().all_objects()) {
    ++stats.objects_examined;

    // Which former partitions wrote this object during degraded mode?
    std::vector<EntitySnapshot> updated_candidates;
    for (const auto& partition : former_partitions) {
      if (!updated_in_partition(id, partition)) continue;
      std::optional<EntitySnapshot> snap = latest_in_partition(id, partition);
      if (snap) updated_candidates.push_back(std::move(*snap));
    }
    if (updated_candidates.empty()) continue;

    EntitySnapshot winner;
    if (updated_candidates.size() == 1) {
      winner = std::move(updated_candidates.front());
    } else {
      // Write-write conflict: the application (or the generic policy)
      // produces the replica-consistent state (Fig. 4.6).
      ++stats.conflicts;
      conflicts_.insert(id);
      winner = policy.reconcile_replicas(id, updated_candidates);
    }
    apply_everywhere(winner);
    ++stats.updates_propagated;
  }
  return stats;
}

bool ReplicaReconciler::try_rollback_search(
    const std::vector<ObjectId>& affected_objects,
    const std::function<bool()>& is_consistent) {
  // Collect the union of recorded historical states across all nodes,
  // newest first.  Rolling them back one at a time undoes degraded-mode
  // updates in reverse chronological order (Section 3.3); the potential
  // "domino effect" is bounded by the history length.
  struct Candidate {
    SimTime when;
    EntitySnapshot state;
  };
  std::vector<Candidate> candidates;
  std::vector<EntitySnapshot> saved;
  for (ObjectId id : affected_objects) {
    bool have_current = false;
    for (auto* m : managers_) {
      if (!have_current && m->has_local_replica(id)) {
        saved.push_back(m->local_replica(id).snapshot());
        have_current = true;
      }
      for (const TimedSnapshot& ts : m->history().history(id)) {
        candidates.push_back(Candidate{ts.when, ts.state});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.when > b.when;
            });

  for (const Candidate& c : candidates) {
    // The recorded state is the state *after* an update; applying the
    // preceding entry effectively undoes that update.  We conservatively
    // re-apply each historical state and test for consistency.
    apply_everywhere(c.state);
    if (is_consistent()) return true;
  }

  for (const EntitySnapshot& snap : saved) apply_everywhere(snap);
  return false;
}

void ReplicaReconciler::finish() {
  for (auto* m : managers_) {
    m->clear_degraded_updates();
    m->history().clear_all();
  }
  conflicts_.clear();
}

}  // namespace dedisys
