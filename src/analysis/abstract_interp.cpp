#include "analysis/abstract_interp.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>
#include <vector>

// GCC 12 reports spurious -Wmaybe-uninitialized for copies/moves of
// std::optional<std::string> members under -O2 (same as analyzer.cpp's
// folding stack).  AbsV values only ever flow through a plain push/pop
// stack with no uninitialized reads.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace dedisys::analysis {

namespace {

/// Abstract value of one sub-expression on the interpreter stack.
struct AbsV {
  Interval iv = Interval::top();   ///< numeric value range
  ValueKind kind = ValueKind::Unknown;
  std::optional<std::string> attr; ///< set when the node is bare `self.attr`
  std::optional<std::string> sval; ///< set when the node is a string literal
  bool from_env = false;           ///< reads any attribute or argument
  /// Boolean view: over-approximation of the states satisfying this
  /// sub-expression.  `box_bottom` marks a provably empty satisfying set
  /// (the box map cannot encode bottom on its own).
  Box box;
  bool box_exact = false;
  bool box_bottom = false;
};

/// Three-valued truth from the value interval: any interval excluding 0
/// is definitely truthy, the point interval {0} definitely falsy.
std::optional<bool> truth_of(const AbsV& v) {
  if (v.kind == ValueKind::Str) return std::nullopt;
  if (v.iv.is_empty()) return std::nullopt;
  if (!v.iv.contains(0)) return true;
  if (v.iv.is_point()) return false;
  return std::nullopt;
}

AbsV make_bool(std::optional<bool> t) {
  AbsV out;
  out.kind = ValueKind::Number;
  if (t.has_value()) {
    out.iv = Interval::point(*t ? 1.0 : 0.0);
    if (*t) {
      out.box_exact = true;  // satisfied everywhere: top box, exact
    } else {
      out.box_bottom = true;
    }
  } else {
    out.iv = Interval::range(0, 1);
  }
  return out;
}

bool is_ordering(OclBinOp op) {
  return op == OclBinOp::Lt || op == OclBinOp::Le || op == OclBinOp::Gt ||
         op == OclBinOp::Ge;
}

bool is_arith(OclBinOp op) {
  return op == OclBinOp::Add || op == OclBinOp::Sub ||
         op == OclBinOp::Mul || op == OclBinOp::Div;
}

/// Decides a comparison over numeric intervals; nullopt when the
/// intervals overlap without forcing an outcome.
std::optional<bool> decide_cmp(OclBinOp op, const Interval& a,
                               const Interval& b) {
  if (a.is_empty() || b.is_empty()) return std::nullopt;
  switch (op) {
    case OclBinOp::Lt:
      if (a.hi < b.lo) return true;
      if (a.lo >= b.hi) return false;
      return std::nullopt;
    case OclBinOp::Le:
      if (a.hi <= b.lo) return true;
      if (a.lo > b.hi) return false;
      return std::nullopt;
    case OclBinOp::Gt: return decide_cmp(OclBinOp::Lt, b, a);
    case OclBinOp::Ge: return decide_cmp(OclBinOp::Le, b, a);
    case OclBinOp::Eq:
      if (a.is_point() && b.is_point() && a.lo == b.lo) return true;
      if (!a.intersects(b)) return false;
      return std::nullopt;
    case OclBinOp::Ne: {
      const std::optional<bool> eq = decide_cmp(OclBinOp::Eq, a, b);
      if (eq.has_value()) return !*eq;
      return std::nullopt;
    }
    default: return std::nullopt;
  }
}

/// Satisfaction box of the atom `attr op p` for a point constant p.
/// Soundness only needs the operand to always evaluate to p, so any
/// point-interval numeric operand qualifies, not just literals.  Strict
/// operators lose exactness (closed bounds over-approximate).
std::pair<Box, bool> atom_box(const std::string& attr, OclBinOp op,
                              double p) {
  Box box;
  switch (op) {
    case OclBinOp::Lt: box[attr] = Interval::at_most(p); return {box, false};
    case OclBinOp::Le: box[attr] = Interval::at_most(p); return {box, true};
    case OclBinOp::Gt: box[attr] = Interval::at_least(p); return {box, false};
    case OclBinOp::Ge: box[attr] = Interval::at_least(p); return {box, true};
    case OclBinOp::Eq: box[attr] = Interval::point(p); return {box, true};
    default: return {Box{}, false};  // Ne and others: top, inexact
  }
}

OclBinOp mirror(OclBinOp op) {
  switch (op) {
    case OclBinOp::Lt: return OclBinOp::Gt;
    case OclBinOp::Le: return OclBinOp::Ge;
    case OclBinOp::Gt: return OclBinOp::Lt;
    case OclBinOp::Ge: return OclBinOp::Le;
    default: return op;  // Eq/Ne are symmetric
  }
}

/// The interval interpreter proper: a post-order stack machine like the
/// folding visitor, but over (interval, kind, box) triples.
class IntervalVisitor final : public OclVisitor {
 public:
  IntervalVisitor(const AbstractEnv& env, AnalysisReport& report)
      : env_(env), report_(report) {}

  [[nodiscard]] AbsV result() const {
    return stack_.size() == 1 ? stack_.back() : AbsV{};
  }

  void on_number(double v) override {
    AbsV a;
    a.iv = Interval::point(v);
    a.kind = ValueKind::Number;
    if (v != 0) {
      a.box_exact = true;
    } else {
      a.box_bottom = true;
    }
    stack_.push_back(std::move(a));
  }

  void on_string(const std::string& s) override {
    AbsV a;
    a.kind = ValueKind::Str;
    a.sval = s;
    stack_.push_back(std::move(a));
  }

  void on_attribute(const std::string& name) override {
    AbsV a;
    a.kind = env_.attr_kind ? env_.attr_kind(name) : ValueKind::Unknown;
    a.iv = env_.attr_interval ? env_.attr_interval(name) : Interval::top();
    if (a.kind == ValueKind::Str) a.iv = Interval::top();
    a.attr = name;
    a.from_env = true;
    stack_.push_back(std::move(a));
  }

  void on_argument(std::size_t index) override {
    AbsV a;
    a.kind = env_.arg_kind ? env_.arg_kind(index) : ValueKind::Unknown;
    a.from_env = true;
    stack_.push_back(std::move(a));
  }

  void leave_binary(OclBinOp op) override {
    const AbsV rhs = pop();
    const AbsV lhs = pop();
    AbsV out;
    if (is_arith(op)) {
      out = apply_arith(op, lhs, rhs);
    } else if (op == OclBinOp::Eq || op == OclBinOp::Ne || is_ordering(op)) {
      out = apply_cmp(op, lhs, rhs);
    } else {
      out = apply_logic(op, lhs, rhs);
    }
    out.from_env = lhs.from_env || rhs.from_env;
    stack_.push_back(std::move(out));
  }

  void leave_not() override {
    const AbsV inner = pop();
    std::optional<bool> t = truth_of(inner);
    if (t.has_value()) t = !*t;
    AbsV out = make_bool(t);
    out.from_env = inner.from_env;
    stack_.push_back(std::move(out));
  }

 private:
  AbsV pop() {
    AbsV a = std::move(stack_.back());
    stack_.pop_back();
    return a;
  }

  void warn(std::string msg) {
    report_.diagnostics.push_back(
        Diagnostic{Diagnostic::Severity::Warning, std::move(msg)});
  }

  AbsV apply_arith(OclBinOp op, const AbsV& lhs, const AbsV& rhs) {
    AbsV out;
    out.kind = ValueKind::Number;
    if (lhs.kind == ValueKind::Str || rhs.kind == ValueKind::Str) {
      return out;  // kind mismatch already diagnosed by the folding pass
    }
    switch (op) {
      case OclBinOp::Add: out.iv = add(lhs.iv, rhs.iv); break;
      case OclBinOp::Sub: out.iv = sub(lhs.iv, rhs.iv); break;
      case OclBinOp::Mul: out.iv = mul(lhs.iv, rhs.iv); break;
      case OclBinOp::Div:
        // The folding pass catches a literal zero divisor; here the
        // refined check: an environment-derived divisor interval that
        // still straddles zero is a *possible* runtime failure.
        if (rhs.from_env && !rhs.iv.is_top() && !rhs.iv.is_empty() &&
            rhs.iv.contains(0)) {
          warn("possible division by zero: divisor interval " +
               analysis::to_string(rhs.iv) + " contains zero");
        }
        out.iv = div(lhs.iv, rhs.iv);
        break;
      default: break;
    }
    return out;
  }

  AbsV apply_cmp(OclBinOp op, const AbsV& lhs, const AbsV& rhs) {
    // String equality between two literals is decided syntactically; any
    // other string comparison is either a diagnosed kind error or
    // genuinely contingent.
    if ((op == OclBinOp::Eq || op == OclBinOp::Ne) && lhs.sval &&
        rhs.sval) {
      const bool eq = *lhs.sval == *rhs.sval;
      return make_bool(op == OclBinOp::Eq ? eq : !eq);
    }
    if (lhs.kind == ValueKind::Str || rhs.kind == ValueKind::Str) {
      return make_bool(std::nullopt);
    }
    AbsV out = make_bool(decide_cmp(op, lhs.iv, rhs.iv));
    if (out.iv.is_point()) return out;  // decided: box already top/bottom
    // Undecided: derive the satisfaction box when one side is a bare
    // attribute and the other always evaluates to one number.
    if (lhs.attr && rhs.kind == ValueKind::Number && rhs.iv.is_point()) {
      auto [box, exact] = atom_box(*lhs.attr, op, rhs.iv.lo);
      out.box = std::move(box);
      out.box_exact = exact;
    } else if (rhs.attr && lhs.kind == ValueKind::Number &&
               lhs.iv.is_point()) {
      auto [box, exact] = atom_box(*rhs.attr, mirror(op), lhs.iv.lo);
      out.box = std::move(box);
      out.box_exact = exact;
    }
    return out;
  }

  AbsV apply_logic(OclBinOp op, const AbsV& lhs, const AbsV& rhs) {
    const std::optional<bool> lt = truth_of(lhs);
    const std::optional<bool> rt = truth_of(rhs);
    diagnose_logic(op, lhs, lt, rhs, rt);
    std::optional<bool> t;
    AbsV out;
    if (op == OclBinOp::And) {
      if ((lt && !*lt) || (rt && !*rt)) {
        t = false;
      } else if (lt && rt) {
        t = true;
      }
      out = make_bool(t);
      if (!t.has_value()) conjoin(out, lhs, rhs);
    } else if (op == OclBinOp::Or) {
      if ((lt && *lt) || (rt && *rt)) {
        t = true;
      } else if (lt && rt) {
        t = false;
      }
      out = make_bool(t);
      if (!t.has_value()) disjoin(out, lhs, rhs);
    } else {  // Implies
      if ((lt && !*lt) || (rt && *rt)) {
        t = true;
      } else if (lt && *lt && rt && !*rt) {
        t = false;
      }
      out = make_bool(t);
      // Undecided implication: top box (the satisfied states include
      // everything outside the guard, which a box cannot carve out).
    }
    return out;
  }

  /// sat(a and b) ⊆ box(a) ⊓ box(b); exact only when both sides are.
  static void conjoin(AbsV& out, const AbsV& lhs, const AbsV& rhs) {
    if (lhs.box_bottom || rhs.box_bottom) {
      out.box_bottom = true;
      return;
    }
    out.box = lhs.box;
    for (const auto& [attr, iv] : rhs.box) {
      auto it = out.box.find(attr);
      if (it == out.box.end()) {
        out.box[attr] = iv;
      } else {
        it->second = meet(it->second, iv);
      }
    }
    out.box_exact = lhs.box_exact && rhs.box_exact;
  }

  /// sat(a or b) ⊆ hull: only attributes constrained by *both* disjuncts
  /// stay constrained (to the interval join); never exact.
  static void disjoin(AbsV& out, const AbsV& lhs, const AbsV& rhs) {
    if (lhs.box_bottom) {
      out.box = rhs.box;
      out.box_exact = rhs.box_exact;
      return;
    }
    if (rhs.box_bottom) {
      out.box = lhs.box;
      out.box_exact = lhs.box_exact;
      return;
    }
    for (const auto& [attr, iv] : lhs.box) {
      auto it = rhs.box.find(attr);
      if (it != rhs.box.end()) out.box[attr] = join(iv, it->second);
    }
    out.box_exact = false;
  }

  void diagnose_logic(OclBinOp op, const AbsV& lhs, std::optional<bool> lt,
                      const AbsV& rhs, std::optional<bool> rt) {
    // Interval-derived decisions only: constant operands were already
    // folded (and flagged) by the folding pass.
    auto flag = [&](const AbsV& side, bool value, const char* which) {
      if (!side.from_env) return;
      report_.has_dead_code = true;
      warn(std::string(which) + " operand of '" + to_string(op) +
           "' is statically " + (value ? "true" : "false") +
           " under derived intervals — dead branch");
    };
    if (op == OclBinOp::Implies) {
      if (lt && !*lt && lhs.from_env) {
        report_.has_dead_code = true;
        warn(
            "implication guard is statically false under derived "
            "intervals — constraint is vacuously true");
      }
      return;
    }
    if (lt.has_value()) flag(lhs, *lt, "left");
    if (rt.has_value()) flag(rhs, *rt, "right");
  }

  const AbstractEnv& env_;
  AnalysisReport& report_;
  std::vector<AbsV> stack_;
};

/// Usage-based kind inference (satellite 2): one post-order pass
/// collecting per-attribute facts.
class KindInferVisitor final : public OclVisitor {
 public:
  [[nodiscard]] std::map<std::string, ValueKind> resolve() const {
    std::map<std::string, ValueKind> out;
    for (const auto& [attr, facts] : facts_) {
      if (facts.saw_str) {
        out[attr] = ValueKind::Str;
      } else if (facts.saw_number) {
        out[attr] = ValueKind::Number;
      }
    }
    return out;
  }

  void on_number(double) override { push(ValueKind::Number, std::nullopt); }
  void on_string(const std::string&) override {
    push(ValueKind::Str, std::nullopt);
  }
  void on_attribute(const std::string& name) override {
    push(ValueKind::Unknown, name);
  }
  void on_argument(std::size_t) override {
    push(ValueKind::Unknown, std::nullopt);
  }

  void leave_binary(OclBinOp op) override {
    const Operand rhs = pop();
    const Operand lhs = pop();
    if (op == OclBinOp::Eq || op == OclBinOp::Ne) {
      // Equality pins a bare attribute to the other side's kind.
      if (lhs.attr && rhs.kind != ValueKind::Unknown) fact(*lhs.attr, rhs.kind);
      if (rhs.attr && lhs.kind != ValueKind::Unknown) fact(*rhs.attr, lhs.kind);
    } else {
      // Arithmetic, ordering and logic all require numeric operands.
      if (lhs.attr) fact(*lhs.attr, ValueKind::Number);
      if (rhs.attr) fact(*rhs.attr, ValueKind::Number);
    }
    push(ValueKind::Number, std::nullopt);
  }

  void leave_not() override {
    const Operand inner = pop();
    if (inner.attr) fact(*inner.attr, ValueKind::Number);
    push(ValueKind::Number, std::nullopt);
  }

 private:
  struct Operand {
    ValueKind kind;
    std::optional<std::string> attr;
  };
  struct Facts {
    bool saw_number = false;
    bool saw_str = false;
  };

  void push(ValueKind kind, std::optional<std::string> attr) {
    stack_.push_back(Operand{kind, std::move(attr)});
  }
  Operand pop() {
    Operand o = std::move(stack_.back());
    stack_.pop_back();
    return o;
  }
  void fact(const std::string& attr, ValueKind kind) {
    if (kind == ValueKind::Str) facts_[attr].saw_str = true;
    if (kind == ValueKind::Number) facts_[attr].saw_number = true;
  }

  std::vector<Operand> stack_;
  std::map<std::string, Facts> facts_;
};

/// Union-find over constraint names for interference clustering.
class UnionFind {
 public:
  void add(const std::string& name) {
    parent_.emplace(name, name);
  }
  const std::string& find(const std::string& name) {
    std::string& p = parent_.at(name);
    if (p == name) return p;
    const std::string root = find(p);
    p = root;
    return parent_.at(name);
  }
  void unite(const std::string& a, const std::string& b) {
    const std::string ra = find(a);
    const std::string rb = find(b);
    if (ra == rb) return;
    // Root at the lexicographically smaller name so cluster keys are
    // deterministic and human-meaningful.
    if (ra < rb) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
  }

 private:
  std::map<std::string, std::string> parent_;
};

bool is_invariant(ConstraintType t) {
  return t == ConstraintType::HardInvariant ||
         t == ConstraintType::SoftInvariant ||
         t == ConstraintType::AsyncInvariant;
}

bool read_sets_intersect(const ReadSet& a, const ReadSet& b) {
  for (const std::string& attr : a.attributes) {
    if (b.attributes.count(attr) != 0) return true;
  }
  return false;
}

/// stronger ⇒ weaker: the weaker box must be exact (membership implies
/// satisfaction) and every interval it imposes must contain the
/// stronger constraint's interval for that attribute.
bool subsumes(const AnalysisReport& stronger, const AnalysisReport& weaker) {
  if (!weaker.sat_box_exact || weaker.sat_box.empty()) return false;
  if (stronger.verdict == Verdict::Unsatisfiable) return false;
  for (const auto& [attr, weak_iv] : weaker.sat_box) {
    auto it = stronger.sat_box.find(attr);
    if (it == stronger.sat_box.end()) return false;
    if (!it->second.subset_of(weak_iv)) return false;
  }
  return true;
}

}  // namespace

void abstract_interpret(const OclExpr& expr, const AbstractEnv& env,
                        AnalysisReport& report) {
  IntervalVisitor interp(env, report);
  expr->accept(interp);
  const AbsV whole = interp.result();

  bool box_empty = whole.box_bottom;
  for (const auto& [attr, iv] : whole.box) {
    (void)attr;
    if (iv.is_empty()) box_empty = true;
  }

  // Verdict: the fold decision wins when present (it also covers string
  // folds the interval domain cannot represent), then the whole-expression
  // interval truth, then emptiness of the constraint's own box (which
  // catches contradictions like `self.a >= 10 and self.a <= 5` that no
  // single interval evaluation decides).
  const std::optional<bool> t = truth_of(whole);
  if (report.triviality == Triviality::AlwaysTrue) {
    report.verdict = Verdict::Tautology;
  } else if (report.triviality == Triviality::AlwaysFalse) {
    report.verdict = Verdict::Unsatisfiable;
  } else if (t.has_value()) {
    report.verdict = *t ? Verdict::Tautology : Verdict::Unsatisfiable;
  } else if (box_empty) {
    report.verdict = Verdict::Unsatisfiable;
  } else {
    report.verdict = Verdict::Contingent;
  }

  if (report.verdict == Verdict::Tautology) {
    report.sat_box.clear();  // satisfied everywhere: top box, exactly
    report.sat_box_exact = true;
    if (report.triviality != Triviality::AlwaysTrue) {
      report.diagnostics.push_back(Diagnostic{
          Diagnostic::Severity::Warning,
          "constraint is statically always satisfied under derived "
          "intervals — proven tautology"});
    }
  } else if (report.verdict == Verdict::Unsatisfiable) {
    report.sat_box = whole.box;
    report.sat_box_exact = false;
    if (report.triviality != Triviality::AlwaysFalse) {
      report.diagnostics.push_back(Diagnostic{
          Diagnostic::Severity::Error,
          "constraint is statically unsatisfiable under derived "
          "intervals — every affected invocation would be rejected"});
    }
  } else {
    report.sat_box = whole.box;
    report.sat_box_exact = whole.box_exact;
  }
}

std::map<std::string, ValueKind> infer_attribute_kinds(const OclExpr& expr) {
  KindInferVisitor infer;
  expr->accept(infer);
  return infer.resolve();
}

ConfigAnalysis analyze_configuration(const ConstraintRepository& repository) {
  ConfigAnalysis out;
  struct Item {
    std::string name;
    const AnalysisReport* report;
  };
  std::vector<Item> items;
  for (const ConstraintRegistration& reg : repository.registrations()) {
    if (reg.analysis == nullptr || reg.analysis->opaque) continue;
    if (!is_invariant(reg.constraint->type())) continue;
    items.push_back(Item{reg.constraint->name(), reg.analysis.get()});
    switch (reg.analysis->verdict) {
      case Verdict::Tautology: ++out.tautologies; break;
      case Verdict::Unsatisfiable: ++out.unsatisfiable; break;
      case Verdict::Contingent: ++out.contingent; break;
    }
  }

  UnionFind clusters;
  for (const Item& item : items) clusters.add(item.name);

  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      const AnalysisReport& a = *items[i].report;
      const AnalysisReport& b = *items[j].report;
      if (a.context_class.empty() || a.context_class != b.context_class) {
        continue;
      }
      std::string witness;
      if (boxes_disjoint(a.sat_box, b.sat_box, &witness)) {
        out.conflicts.push_back(ConfigAnalysis::ConflictPair{
            items[i].name, items[j].name, witness});
      }
      if (subsumes(a, b)) {
        out.subsumptions.push_back(
            ConfigAnalysis::SubsumptionPair{items[i].name, items[j].name});
      }
      if (subsumes(b, a)) {
        out.subsumptions.push_back(
            ConfigAnalysis::SubsumptionPair{items[j].name, items[i].name});
      }
      if (read_sets_intersect(a.read_set, b.read_set)) {
        out.interference.push_back(
            ConfigAnalysis::InterferenceEdge{items[i].name, items[j].name});
        clusters.unite(items[i].name, items[j].name);
      }
    }
  }

  std::set<std::string> roots;
  for (const Item& item : items) {
    const std::string root = clusters.find(item.name);
    out.cluster_of[item.name] = root;
    roots.insert(root);
  }
  out.clusters = roots.size();
  return out;
}

}  // namespace dedisys::analysis
