// Abstract domains for the OCL abstract interpreter (PR 8).
//
// Interval: classic closed intervals over the extended reals, the value
// domain attributes and sub-expressions flow through.  ValueKind: the
// string-vs-number kind lattice the folding pass already used, promoted
// here so the interpreter, the analyzer and reports share one definition.
// Box: a per-attribute interval environment — the over-approximation of a
// constraint's satisfying states used for conflict/subsumption detection.
//
// Header-only (like report.h) so src/constraints can carry boxes inside
// AnalysisReport without linking the analyzer library.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <string>

namespace dedisys::analysis {

/// Statically known value kind of an operand or attribute.
enum class ValueKind { Number, Str, Unknown };

inline const char* to_string(ValueKind k) {
  switch (k) {
    case ValueKind::Number: return "number";
    case ValueKind::Str: return "string";
    case ValueKind::Unknown: return "unknown";
  }
  return "?";
}

/// Closed interval [lo, hi] over the extended reals.  `lo > hi` encodes
/// the empty interval (bottom); [-inf, +inf] is top.  All operations are
/// over-approximations of the corresponding concrete operation: if
/// x ∈ a and y ∈ b then x op y ∈ apply(op, a, b).
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  [[nodiscard]] static Interval top() { return Interval{}; }
  [[nodiscard]] static Interval bottom() { return Interval{1, 0}; }
  [[nodiscard]] static Interval point(double v) { return Interval{v, v}; }
  [[nodiscard]] static Interval range(double lo, double hi) {
    return Interval{lo, hi};
  }
  /// x <= v and v <= x respectively, as closed half-lines.
  [[nodiscard]] static Interval at_most(double v) {
    return Interval{-std::numeric_limits<double>::infinity(), v};
  }
  [[nodiscard]] static Interval at_least(double v) {
    return Interval{v, std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] bool is_empty() const { return lo > hi; }
  [[nodiscard]] bool is_top() const {
    return std::isinf(lo) && lo < 0 && std::isinf(hi) && hi > 0;
  }
  [[nodiscard]] bool is_point() const { return lo == hi; }
  [[nodiscard]] bool contains(double v) const { return lo <= v && v <= hi; }
  [[nodiscard]] bool intersects(const Interval& o) const {
    return !is_empty() && !o.is_empty() && lo <= o.hi && o.lo <= hi;
  }
  /// Subset (refines): every value of *this lies in `o`.  The empty
  /// interval is a subset of everything.
  [[nodiscard]] bool subset_of(const Interval& o) const {
    if (is_empty()) return true;
    if (o.is_empty()) return false;
    return o.lo <= lo && hi <= o.hi;
  }
  [[nodiscard]] bool operator==(const Interval& o) const {
    return (is_empty() && o.is_empty()) || (lo == o.lo && hi == o.hi);
  }
};

/// Least upper bound (convex hull).
[[nodiscard]] inline Interval join(const Interval& a, const Interval& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/// Greatest lower bound (intersection).
[[nodiscard]] inline Interval meet(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::bottom();
  const Interval m{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  return m.is_empty() ? Interval::bottom() : m;
}

/// Standard widening: bounds that grew since `prev` jump to infinity.
/// OCL expressions are loop-free so the interpreter never needs this for
/// termination; it exists for fixpoint clients (and is pinned by tests).
[[nodiscard]] inline Interval widen(const Interval& prev,
                                    const Interval& next) {
  if (prev.is_empty()) return next;
  if (next.is_empty()) return prev;
  Interval w = prev;
  if (next.lo < prev.lo) w.lo = -std::numeric_limits<double>::infinity();
  if (next.hi > prev.hi) w.hi = std::numeric_limits<double>::infinity();
  return w;
}

[[nodiscard]] inline Interval neg(const Interval& a) {
  if (a.is_empty()) return a;
  return Interval{-a.hi, -a.lo};
}

[[nodiscard]] inline Interval add(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::bottom();
  return Interval{a.lo + b.lo, a.hi + b.hi};
}

[[nodiscard]] inline Interval sub(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::bottom();
  return Interval{a.lo - b.hi, a.hi - b.lo};
}

namespace detail {
/// IEEE 0*inf is NaN; the interval convention is 0 (the concrete product
/// of 0 with any finite value is 0, and infinities here only abbreviate
/// "unbounded", never actual operands).
[[nodiscard]] inline double ext_mul(double x, double y) {
  if (x == 0 || y == 0) return 0;
  return x * y;
}
}  // namespace detail

[[nodiscard]] inline Interval mul(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::bottom();
  const double c[4] = {
      detail::ext_mul(a.lo, b.lo), detail::ext_mul(a.lo, b.hi),
      detail::ext_mul(a.hi, b.lo), detail::ext_mul(a.hi, b.hi)};
  return Interval{std::min({c[0], c[1], c[2], c[3]}),
                  std::max({c[0], c[1], c[2], c[3]})};
}

/// Interval division.  A divisor interval containing 0 yields top: the
/// concrete evaluator throws on exact zero, and near-zero divisors make
/// the quotient unbounded — either way no finite bound is sound.
[[nodiscard]] inline Interval div(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::bottom();
  if (b.contains(0)) return Interval::top();
  const double rlo = std::isinf(b.hi) ? 0.0 : 1.0 / b.hi;
  const double rhi = std::isinf(b.lo) ? 0.0 : 1.0 / b.lo;
  return mul(a, Interval{rlo, rhi});
}

[[nodiscard]] inline std::string to_string(const Interval& i) {
  if (i.is_empty()) return "(empty)";
  auto bound = [](double v, bool low) -> std::string {
    if (std::isinf(v)) return v < 0 ? "-inf" : "+inf";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    (void)low;
    return buf;
  };
  return "[" + bound(i.lo, true) + ", " + bound(i.hi, false) + "]";
}

/// Per-attribute interval environment.  Attributes absent from the map
/// are unconstrained (top).  Used both as the input environment of the
/// interpreter and as the satisfaction box of a constraint.
using Box = std::map<std::string, Interval>;

/// True when the two boxes provably share no state: some attribute is
/// constrained by both to disjoint intervals.  Sound for conflict
/// detection because each box over-approximates its constraint's
/// satisfying set.
[[nodiscard]] inline bool boxes_disjoint(const Box& a, const Box& b,
                                         std::string* witness = nullptr) {
  for (const auto& [attr, ia] : a) {
    auto it = b.find(attr);
    if (it == b.end()) continue;
    if (!ia.intersects(it->second)) {
      if (witness != nullptr) *witness = attr;
      return true;
    }
  }
  return false;
}

}  // namespace dedisys::analysis
