// Per-constraint static-analysis results (PR 3).
//
// An AnalysisReport is produced once at registration time by the analyzer
// (src/analysis/analyzer.h) and attached to the constraint's registration
// in the ConstraintRepository.  CCMgr consults it on the hot validation
// path to skip constraints whose read-set is provably disjoint from an
// invocation's write-set; AdminConsole and /metrics expose it for
// operators; tools/dedisys_lint prints its diagnostics in CI.
//
// Header-only so that src/constraints can carry reports without linking
// against the analyzer library (constraints <- analysis would otherwise
// be a dependency cycle: the analyzer inspects OclConstraint).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/domain.h"

namespace dedisys::analysis {

/// Everything an OCL expression can read from its environment:
/// `self.<attr>` attributes of the context object and `arg<N>` indices of
/// the intercepted invocation.
struct ReadSet {
  std::set<std::string> attributes;
  std::set<std::size_t> arguments;

  [[nodiscard]] bool empty() const {
    return attributes.empty() && arguments.empty();
  }
};

/// Result of constant folding over the whole expression.
enum class Triviality {
  None,        ///< Value depends on the environment.
  AlwaysTrue,  ///< Statically satisfied — validation can never fail.
  AlwaysFalse, ///< Statically violated — almost certainly a spec bug.
};

/// Whether the read-set is confined to the target object, so the
/// constraint is locally checkable inside a partition (LCC) or needs
/// other objects / replicas (NCC -> may degrade to Uncheckable).
enum class Locality {
  Local,       ///< Reads only the called object — checkable in any partition.
  CrossObject, ///< Context derived via a reference getter — needs reachability.
  Opaque,      ///< Not statically analyzable (e.g. FunctionConstraint).
};

struct Diagnostic {
  enum class Severity { Warning, Error };
  Severity severity = Severity::Warning;
  std::string message;
};

/// Classification by the interval/kind abstract interpreter (PR 8).
/// Strictly stronger than Triviality: constant folding only decides
/// expressions with no environment reads, the interpreter also decides
/// expressions whose attribute intervals force the outcome.
enum class Verdict {
  Contingent,    ///< Satisfiability depends on runtime state.
  Tautology,     ///< Provably satisfied in every reachable state.
  Unsatisfiable, ///< Provably violated in every reachable state.
};

struct AnalysisReport {
  /// True when the constraint body is not an OCL expression the analyzer
  /// can see through (FunctionConstraint & friends).  Opaque constraints
  /// are never pruned.
  bool opaque = true;
  ReadSet read_set;
  Triviality triviality = Triviality::None;
  /// A sub-expression was folded away (e.g. `x and false`): the author
  /// probably did not mean to write dead code.
  bool has_dead_code = false;
  Locality locality = Locality::Opaque;
  std::vector<Diagnostic> diagnostics;
  /// Abstract-interpretation verdict (PR 8).  Opaque reports stay
  /// Contingent — no static knowledge either way.
  Verdict verdict = Verdict::Contingent;
  /// Over-approximation of the constraint's satisfying states: every
  /// state satisfying the constraint assigns each boxed attribute a value
  /// inside its interval.  Attributes not in the box are unconstrained.
  Box sat_box;
  /// True when sat_box is exact (membership implies satisfaction), which
  /// holds when the expression is a conjunction of attr-vs-constant
  /// atoms with non-strict operators.  Required of the *weaker* side for
  /// subsumption claims.
  bool sat_box_exact = false;
  /// Effective context class the attribute checks ran against (declared
  /// context-class, else the common called-object class); empty when
  /// unknown/ambiguous.  Cross-constraint analysis pairs constraints by
  /// this class.
  std::string context_class;
  /// Whether CCMgr may legally skip validation when the invocation's
  /// write-set is disjoint from `read_set` (see docs/static_analysis.md
  /// for the soundness argument).  Set by the analyzer; never true for
  /// opaque or error-carrying reports.
  bool prunable = false;

  [[nodiscard]] bool has_errors() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == Diagnostic::Severity::Error) return true;
    }
    return false;
  }
};

/// Whole-configuration analysis over a repository's deployed invariant
/// set (PR 8): pairwise conflicts (abstract satisfaction sets disjoint —
/// no state satisfies both), subsumption (C1 ⇒ C2), and the read-set
/// interference graph whose connected components drive the CCMgr's
/// reconciliation-batch evaluation order.  Produced by
/// analysis::analyze_configuration and attached to the repository.
struct ConfigAnalysis {
  struct ConflictPair {
    std::string first;
    std::string second;
    std::string attribute;  ///< witness attribute with disjoint intervals
  };
  struct SubsumptionPair {
    std::string stronger;  ///< satisfying(stronger) ⊆ satisfying(weaker)
    std::string weaker;
  };
  struct InterferenceEdge {
    std::string first;
    std::string second;
  };

  std::vector<ConflictPair> conflicts;
  std::vector<SubsumptionPair> subsumptions;
  std::vector<InterferenceEdge> interference;
  /// Constraint name -> interference-cluster key (the lexicographically
  /// smallest member name).  Constraints absent here were not analyzable.
  std::map<std::string, std::string> cluster_of;
  std::size_t clusters = 0;
  /// Verdict tallies over the analyzable (non-opaque) invariants.
  std::size_t tautologies = 0;
  std::size_t unsatisfiable = 0;
  std::size_t contingent = 0;
};

inline const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Contingent: return "contingent";
    case Verdict::Tautology: return "tautology";
    case Verdict::Unsatisfiable: return "unsatisfiable";
  }
  return "?";
}

inline const char* to_string(Triviality t) {
  switch (t) {
    case Triviality::None: return "none";
    case Triviality::AlwaysTrue: return "always_true";
    case Triviality::AlwaysFalse: return "always_false";
  }
  return "?";
}

inline const char* to_string(Locality l) {
  switch (l) {
    case Locality::Local: return "local";
    case Locality::CrossObject: return "cross_object";
    case Locality::Opaque: return "opaque";
  }
  return "?";
}

inline const char* to_string(Diagnostic::Severity s) {
  return s == Diagnostic::Severity::Error ? "error" : "warning";
}

/// Maps an EJB-style setter name to the attribute it writes:
/// "setValue" -> "value".  Empty string when `method_name` is not a
/// setter-shaped name (write-set unknown -> caller must not prune).
inline std::string setter_attribute(const std::string& method_name) {
  if (method_name.size() < 4 || method_name.compare(0, 3, "set") != 0) {
    return {};
  }
  const char head = method_name[3];
  if (head < 'A' || head > 'Z') return {};
  std::string attr = method_name.substr(3);
  attr[0] = static_cast<char>(attr[0] - 'A' + 'a');
  return attr;
}

}  // namespace dedisys::analysis
