// Static analysis over parsed OCL constraint ASTs (PR 3).
//
// Runs once at registration time (AdminConsole::deploy_constraints, or
// explicitly via analyze_repository) and produces one AnalysisReport per
// constraint: read-set, constant folding / triviality, locality
// classification for the LCC-vs-NCC decision, and diagnostics against the
// deployed ClassDescriptors.  tools/dedisys_lint drives the same pass
// from the command line for CI.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "analysis/report.h"
#include "constraints/repository.h"
#include "objects/class_descriptor.h"
#include "ocl/ocl.h"

namespace dedisys::analysis {

/// Analyzes one parsed OCL expression in isolation: read-set, folding,
/// expression-level diagnostics.  Locality and class/method checks need
/// the registration context — use analyze_registration for those.
[[nodiscard]] AnalysisReport analyze_expression(const OclExpr& expr);

/// Full analysis of one registered constraint.  `classes` may be null
/// (attribute existence/kind diagnostics are then skipped).  Constraints
/// whose body is not an OclConstraint yield an opaque report.
[[nodiscard]] AnalysisReport analyze_registration(
    const ConstraintRegistration& reg, const ClassRegistry* classes);

/// Analyzes every registration that has no report yet, attaches the
/// reports to the repository and auto-classifies structurally local
/// constraints as intra-object (Section 3.1: LCC validations of them
/// report plain satisfied/violated).  Returns the number of constraints
/// newly analyzed.
std::size_t analyze_repository(ConstraintRepository& repository,
                               const ClassRegistry* classes);

/// Loads class metadata from the lint side-format:
///   <classes><class name="Flight"><attribute name="seats" type="int"/>
///   </class></classes>
/// Attribute types: int|long|double|float|bool|string|object.
std::size_t load_classes_xml(std::string_view xml_text,
                             ClassRegistry& registry);

/// One-line rendering "severity: message" per diagnostic, prefixed with
/// the constraint name — the lint CLI's output format.
[[nodiscard]] std::string render_diagnostics(const std::string& constraint,
                                             const AnalysisReport& report);

}  // namespace dedisys::analysis
