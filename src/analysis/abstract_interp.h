// Interval/kind abstract interpretation over parsed OCL ASTs (PR 8).
//
// Three layers on top of PR 3's folding pass:
//
//  * abstract_interpret — one post-order walk propagating per-attribute
//    value intervals and string-kind facts through every operator,
//    classifying the constraint (tautology / unsatisfiable / contingent),
//    deriving its satisfaction box, and emitting refined diagnostics
//    (possible division by zero under the derived interval, dead branches
//    decided by intervals, vacuous implication guards).
//
//  * infer_attribute_kinds — usage-based kind inference for attributes
//    without class metadata, so comparisons mixing a folded numeric
//    constant with a string-typed attribute are still diagnosed.
//
//  * analyze_configuration — whole-configuration pass over a repository's
//    deployed invariants: pairwise conflict detection (disjoint
//    satisfaction boxes), subsumption (C1 ⇒ C2), and the read-set
//    interference graph with its connected-component clustering.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>

#include "analysis/domain.h"
#include "analysis/report.h"
#include "constraints/repository.h"
#include "ocl/ocl.h"

namespace dedisys::analysis {

/// Abstract environment the interpreter reads attribute facts from.
/// Null callbacks mean "no knowledge" (top interval, Unknown kind).
struct AbstractEnv {
  std::function<Interval(const std::string&)> attr_interval;
  std::function<ValueKind(const std::string&)> attr_kind;
  std::function<ValueKind(std::size_t)> arg_kind;
};

/// Runs the abstract interpreter over `expr` and fills the report's
/// verdict / sat_box / sat_box_exact fields, appending interval-derived
/// diagnostics.  Expects the folding pass to have run first (the verdict
/// honors an existing Triviality decision, which also covers
/// string-constant folds the interval domain cannot see).
void abstract_interpret(const OclExpr& expr, const AbstractEnv& env,
                        AnalysisReport& report);

/// Infers attribute kinds from how the expression uses them: an `=`/`<>`
/// against an operand of known kind pins the attribute to that kind;
/// any use in an arithmetic/ordering/logical operator pins it to Number.
/// Conflicting facts resolve to Str so the folding pass diagnoses the
/// numeric use with the existing kind-mismatch message (satellite 2).
[[nodiscard]] std::map<std::string, ValueKind> infer_attribute_kinds(
    const OclExpr& expr);

/// Cross-constraint analysis over every analyzed, non-opaque invariant
/// (hard/soft/async) in the repository, paired by effective context
/// class.  Pure function of the attached per-constraint reports.
[[nodiscard]] ConfigAnalysis analyze_configuration(
    const ConstraintRepository& repository);

}  // namespace dedisys::analysis
