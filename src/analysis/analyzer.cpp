#include "analysis/analyzer.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/abstract_interp.h"
#include "constraints/config.h"
#include "constraints/ocl_constraint.h"
#include "objects/value.h"
#include "util/errors.h"

// GCC 12 reports spurious -Wmaybe-uninitialized for copies of
// std::optional<std::variant<..., std::string>> under -O2; the folding
// stack's Abs values are exactly that shape.  The flow is a plain
// push/pop stack with no uninitialized reads.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace dedisys::analysis {

namespace {

/// Statically known value kind of an operand (shared with the abstract
/// interpreter since PR 8).
using Kind = ValueKind;

/// Abstract value on the folding stack: an optional compile-time constant
/// plus the operand's kind.
struct Abs {
  std::optional<OclValue> constant;
  Kind kind = Kind::Unknown;
};

std::optional<bool> truth(const OclValue& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v) != 0;
  if (std::holds_alternative<std::int64_t>(v)) {
    return std::get<std::int64_t>(v) != 0;
  }
  return std::nullopt;  // strings have no truth value
}

bool is_zero(const OclValue& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v) == 0;
  if (std::holds_alternative<std::int64_t>(v)) {
    return std::get<std::int64_t>(v) == 0;
  }
  return false;
}

Kind kind_of_value(const Value& v) {
  if (std::holds_alternative<bool>(v) ||
      std::holds_alternative<std::int64_t>(v) ||
      std::holds_alternative<double>(v)) {
    return Kind::Number;
  }
  if (std::holds_alternative<std::string>(v)) return Kind::Str;
  return Kind::Unknown;  // references and null defaults
}

Kind kind_of_type(const std::string& type_name) {
  if (type_name == "int" || type_name == "long" || type_name == "double" ||
      type_name == "float" || type_name == "bool") {
    return Kind::Number;
  }
  if (type_name == "string") return Kind::Str;
  return Kind::Unknown;
}

/// Post-order stack machine over the expression tree: collects the
/// read-set, folds constants, flags dead sub-expressions and emits the
/// expression-level diagnostics.
class FoldVisitor final : public OclVisitor {
 public:
  using AttrKindFn = std::function<Kind(const std::string&)>;
  using ArgKindFn = std::function<Kind(std::size_t)>;

  FoldVisitor(AnalysisReport& report, AttrKindFn attr_kind,
              ArgKindFn arg_kind)
      : report_(report),
        attr_kind_(std::move(attr_kind)),
        arg_kind_(std::move(arg_kind)) {}

  [[nodiscard]] Abs result() const {
    return stack_.size() == 1 ? stack_.back() : Abs{};
  }

  void on_number(double v) override {
    stack_.push_back(Abs{OclValue{v}, Kind::Number});
  }

  void on_string(const std::string& s) override {
    stack_.push_back(Abs{OclValue{s}, Kind::Str});
  }

  void on_attribute(const std::string& name) override {
    report_.read_set.attributes.insert(name);
    stack_.push_back(Abs{std::nullopt, attr_kind_(name)});
  }

  void on_argument(std::size_t index) override {
    report_.read_set.arguments.insert(index);
    stack_.push_back(Abs{std::nullopt, arg_kind_(index)});
  }

  void leave_binary(OclBinOp op) override {
    const Abs rhs = pop();
    const Abs lhs = pop();
    diagnose(op, lhs, rhs);
    // Every operator yields a numeric result.
    stack_.push_back(Abs{fold_binary(op, lhs, rhs), Kind::Number});
  }

  void leave_not() override {
    const Abs inner = pop();
    if (inner.kind == Kind::Str) error("'not' applied to a string operand");
    stack_.push_back(Abs{fold_not(inner), Kind::Number});
  }

 private:
  Abs pop() {
    Abs a = stack_.back();  // parser guarantees well-formed trees
    stack_.pop_back();
    return a;
  }

  void error(std::string msg) {
    report_.diagnostics.push_back(
        Diagnostic{Diagnostic::Severity::Error, std::move(msg)});
  }

  void diagnose(OclBinOp op, const Abs& lhs, const Abs& rhs) {
    if (op == OclBinOp::Eq || op == OclBinOp::Ne) {
      if ((lhs.kind == Kind::Str && rhs.kind == Kind::Number) ||
          (lhs.kind == Kind::Number && rhs.kind == Kind::Str)) {
        error(std::string("comparison '") + to_string(op) +
              "' between string and numeric operands always fails");
      }
    } else if (lhs.kind == Kind::Str || rhs.kind == Kind::Str) {
      error(std::string("string operand in numeric operator '") +
            to_string(op) + "'");
    }
    if (op == OclBinOp::Div && rhs.constant && is_zero(*rhs.constant)) {
      error("guaranteed division by zero");
    }
  }

  std::optional<OclValue> fold_binary(OclBinOp op, const Abs& lhs,
                                      const Abs& rhs) {
    if (lhs.constant && rhs.constant) {
      try {
        return ocl_apply(op, *lhs.constant, *rhs.constant);
      } catch (const DedisysError&) {
        return std::nullopt;  // mixed-kind constants — already diagnosed
      }
    }
    if (op == OclBinOp::And || op == OclBinOp::Or ||
        op == OclBinOp::Implies) {
      return fold_logic(op, lhs, rhs);
    }
    return std::nullopt;
  }

  static std::optional<OclValue> fold_not(const Abs& inner) {
    if (!inner.constant) return std::nullopt;
    const std::optional<bool> t = truth(*inner.constant);
    if (!t) return std::nullopt;
    return OclValue{static_cast<double>(!*t)};
  }

  /// And/Or/Implies where one side is an absorbing constant: the result
  /// is forced and the non-constant side is dead code (`x and false`).
  /// OCL expressions have no side effects and BinaryNode evaluates both
  /// operands eagerly, so folding either side is sound.
  std::optional<OclValue> fold_logic(OclBinOp op, const Abs& lhs,
                                     const Abs& rhs) {
    const std::optional<bool> lt =
        lhs.constant ? truth(*lhs.constant) : std::nullopt;
    const std::optional<bool> rt =
        rhs.constant ? truth(*rhs.constant) : std::nullopt;
    if (op == OclBinOp::And && ((lt && !*lt) || (rt && !*rt))) {
      report_.has_dead_code = true;
      return OclValue{0.0};
    }
    if (op == OclBinOp::Or && ((lt && *lt) || (rt && *rt))) {
      report_.has_dead_code = true;
      return OclValue{1.0};
    }
    if (op == OclBinOp::Implies && ((lt && !*lt) || (rt && *rt))) {
      report_.has_dead_code = true;
      return OclValue{1.0};
    }
    return std::nullopt;
  }

  AnalysisReport& report_;
  AttrKindFn attr_kind_;
  ArgKindFn arg_kind_;
  std::vector<Abs> stack_;
};

void finish_triviality(AnalysisReport& report, const Abs& whole) {
  if (!whole.constant) return;
  const std::optional<bool> t = truth(*whole.constant);
  if (!t) return;
  if (*t) {
    report.triviality = Triviality::AlwaysTrue;
    report.diagnostics.push_back(Diagnostic{
        Diagnostic::Severity::Warning,
        "constraint is statically always true — it can never be violated"});
  } else {
    report.triviality = Triviality::AlwaysFalse;
    report.diagnostics.push_back(Diagnostic{
        Diagnostic::Severity::Error,
        "constraint is statically always false — every affected invocation "
        "would be rejected"});
  }
}

void finish_prunable(AnalysisReport& report) {
  // An invariant may be skipped by read-set disjointness only when its
  // value cannot depend on the invocation itself (no arg<N> reads) and it
  // is not a guaranteed violation; a proven tautology (which subsumes
  // Triviality::AlwaysTrue) is always skippable.  CCMgr adds the runtime
  // gates (healthy mode, called-object preparation, no stored threat) on
  // top.  Must run after the abstract interpreter set the verdict.
  report.prunable =
      !report.has_errors() &&
      (report.verdict == Verdict::Tautology ||
       (report.read_set.arguments.empty() &&
        report.verdict != Verdict::Unsatisfiable));
}

/// Walks the ancestry of `class_name` looking for a declared default of
/// `attr`.  Returns nullptr when no ancestor declares it.
const Value* find_attribute(const ClassRegistry& classes,
                            const std::string& class_name,
                            const std::string& attr) {
  for (const std::string& cls : classes.ancestry(class_name)) {
    if (!classes.contains(cls)) continue;
    const AttributeMap& defaults = classes.get(cls).default_attributes();
    auto it = defaults.find(attr);
    if (it != defaults.end()) return &it->second;
  }
  return nullptr;
}

/// Declared-type value interval for the abstract interpreter.  Only the
/// type constrains the interval — a default *value* is just the initial
/// state, not a bound.  Booleans are the one finitely-valued type.
Interval interval_of_value(const Value& v) {
  if (std::holds_alternative<bool>(v)) return Interval::range(0, 1);
  return Interval::top();
}

Value default_for_type(const std::string& type_name) {
  if (type_name == "int" || type_name == "long") {
    return Value{std::int64_t{0}};
  }
  if (type_name == "double" || type_name == "float") return Value{0.0};
  if (type_name == "bool") return Value{false};
  if (type_name == "string") return Value{std::string{}};
  if (type_name == "object") return Value{ObjectId{}};
  return Value{};  // unknown type: null default, kind Unknown
}

}  // namespace

AnalysisReport analyze_expression(const OclExpr& expr) {
  AnalysisReport report;
  report.opaque = false;
  // Without class metadata attribute kinds are inferred from usage, so a
  // comparison mixing a folded numeric constant with a string-pinned
  // attribute is still a kind-mismatch error (PR 8 satellite).
  const std::map<std::string, ValueKind> inferred =
      infer_attribute_kinds(expr);
  auto attr_kind = [&](const std::string& attr) {
    auto it = inferred.find(attr);
    return it == inferred.end() ? Kind::Unknown : it->second;
  };
  FoldVisitor fold(report, attr_kind,
                   [](std::size_t) { return Kind::Unknown; });
  expr->accept(fold);
  finish_triviality(report, fold.result());
  AbstractEnv env;
  env.attr_kind = attr_kind;
  abstract_interpret(expr, env, report);
  finish_prunable(report);
  return report;
}

AnalysisReport analyze_registration(const ConstraintRegistration& reg,
                                    const ClassRegistry* classes) {
  AnalysisReport report;  // opaque defaults
  const auto* ocl = dynamic_cast<const OclConstraint*>(reg.constraint.get());
  if (ocl == nullptr) return report;

  report.opaque = false;
  const OclExpr expr = parse_ocl(ocl->expression());

  // Attribute metadata source: the declared context class, else the
  // common class of the called-object preparations.
  std::string context_class = reg.context_class;
  if (context_class.empty()) {
    for (const AffectedMethod& am : reg.affected_methods) {
      if (am.preparation.kind != ContextPreparationKind::CalledObject) {
        continue;
      }
      if (context_class.empty()) {
        context_class = am.class_name;
      } else if (context_class != am.class_name) {
        context_class.clear();  // ambiguous: skip attribute checks
        break;
      }
    }
  }
  const bool class_known = classes != nullptr && !context_class.empty() &&
                           classes->contains(context_class);
  if (classes != nullptr && !context_class.empty() && !class_known) {
    report.diagnostics.push_back(Diagnostic{
        Diagnostic::Severity::Warning,
        "context class '" + context_class +
            "' has no class metadata — attribute checks skipped"});
  }
  report.context_class = context_class;

  // Usage-inferred kinds fill in whatever the metadata leaves Unknown
  // (missing metadata, reference/null defaults) — see analyze_expression.
  const std::map<std::string, ValueKind> inferred =
      infer_attribute_kinds(expr);
  auto inferred_kind = [&](const std::string& attr) {
    auto it = inferred.find(attr);
    return it == inferred.end() ? Kind::Unknown : it->second;
  };
  // Declared kind from metadata, nullopt when the attribute is missing.
  auto declared_kind =
      [&](const std::string& attr) -> std::optional<Kind> {
    if (!class_known) return Kind::Unknown;
    const Value* v = find_attribute(*classes, context_class, attr);
    if (v == nullptr) return std::nullopt;
    return kind_of_value(*v);
  };
  auto arg_kind = [&](std::size_t index) {
    Kind kind = Kind::Unknown;
    bool first = true;
    for (const AffectedMethod& am : reg.affected_methods) {
      if (index >= am.method.param_types.size()) continue;
      const Kind k = kind_of_type(am.method.param_types[index]);
      if (first) {
        kind = k;
        first = false;
      } else if (kind != k) {
        kind = Kind::Unknown;  // affected methods disagree
      }
    }
    return kind;
  };

  FoldVisitor fold(
      report,
      [&](const std::string& attr) {
        const std::optional<Kind> declared = declared_kind(attr);
        if (!declared.has_value()) {
          report.diagnostics.push_back(Diagnostic{
              Diagnostic::Severity::Error,
              "unknown attribute '" + attr + "' on class '" + context_class +
                  "'"});
          return Kind::Unknown;
        }
        return *declared != Kind::Unknown ? *declared : inferred_kind(attr);
      },
      arg_kind);
  expr->accept(fold);
  finish_triviality(report, fold.result());

  // Interval pass: declared types bound the attribute intervals (only
  // bool is finite); kinds as above, without re-emitting the
  // unknown-attribute errors the folding walk already produced.
  AbstractEnv env;
  env.attr_kind = [&](const std::string& attr) {
    const std::optional<Kind> declared = declared_kind(attr);
    if (declared.has_value() && *declared != Kind::Unknown) return *declared;
    return inferred_kind(attr);
  };
  env.attr_interval = [&](const std::string& attr) {
    if (!class_known) return Interval::top();
    const Value* v = find_attribute(*classes, context_class, attr);
    return v == nullptr ? Interval::top() : interval_of_value(*v);
  };
  env.arg_kind = arg_kind;
  abstract_interpret(expr, env, report);

  // arg<N> indices must be in range for every affected method — an
  // out-of-range read is a guaranteed runtime failure on that method.
  for (std::size_t index : report.read_set.arguments) {
    for (const AffectedMethod& am : reg.affected_methods) {
      if (index >= am.method.param_types.size()) {
        report.diagnostics.push_back(Diagnostic{
            Diagnostic::Severity::Error,
            "arg" + std::to_string(index) +
                " is out of range for affected method " + am.method.key()});
      }
    }
  }

  // Locality: with only called-object preparations the read-set is
  // confined to the target object, so the constraint is locally checkable
  // in any partition (LCC); a reference-derived context object may be
  // unreachable (NCC -> Uncheckable).
  bool cross_object = false;
  bool no_context = false;
  for (const AffectedMethod& am : reg.affected_methods) {
    if (am.preparation.kind == ContextPreparationKind::ReferenceGetter) {
      cross_object = true;
    }
    if (am.preparation.kind == ContextPreparationKind::None) {
      no_context = true;
    }
  }
  report.locality = cross_object ? Locality::CrossObject : Locality::Local;
  if (no_context && !report.read_set.attributes.empty()) {
    report.diagnostics.push_back(Diagnostic{
        Diagnostic::Severity::Error,
        "constraint reads self.* but a NoContextObject preparation is "
        "configured"});
  }

  finish_prunable(report);
  return report;
}

std::size_t analyze_repository(ConstraintRepository& repository,
                               const ClassRegistry* classes) {
  std::size_t analyzed = 0;
  for (const ConstraintRegistration& reg : repository.registrations()) {
    if (reg.analysis != nullptr) continue;
    auto report = std::make_shared<AnalysisReport>(
        analyze_registration(reg, classes));
    if (!report->opaque && report->locality == Locality::Local) {
      // Structurally single-object: LCC validations may report plain
      // satisfied/violated (Section 3.1).
      reg.constraint->set_intra_object(true);
    }
    repository.set_analysis(reg.constraint->name(), std::move(report));
    ++analyzed;
  }
  // Whole-configuration pass: always recomputed — registrations added or
  // removed since the last run invalidate conflicts and clustering.
  repository.set_config_analysis(std::make_shared<const ConfigAnalysis>(
      analyze_configuration(repository)));
  return analyzed;
}

std::size_t load_classes_xml(std::string_view xml_text,
                             ClassRegistry& registry) {
  const XmlNode root = parse_xml(xml_text);
  if (root.tag != "classes") {
    throw ConfigError("class metadata root must be <classes>, found <" +
                      root.tag + ">");
  }
  std::size_t loaded = 0;
  for (const XmlNode* cls : root.children_named("class")) {
    ClassDescriptor& descriptor = registry.define(cls->require_attr("name"));
    const std::string super = cls->attr("super");
    if (!super.empty()) descriptor.set_super(super);
    for (const XmlNode* attr : cls->children_named("attribute")) {
      descriptor.define_attribute(attr->require_attr("name"),
                                  default_for_type(attr->attr("type", "int")));
    }
    ++loaded;
  }
  return loaded;
}

std::string render_diagnostics(const std::string& constraint,
                               const AnalysisReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += constraint;
    out += ": ";
    out += to_string(d.severity);
    out += ": ";
    out += d.message;
    out += '\n';
  }
  return out;
}

}  // namespace dedisys::analysis
