#include "ocl/ocl.h"

#include <cctype>

#include "util/errors.h"

namespace dedisys {

const char* to_string(OclBinOp op) {
  switch (op) {
    case OclBinOp::Add: return "+";
    case OclBinOp::Sub: return "-";
    case OclBinOp::Mul: return "*";
    case OclBinOp::Div: return "/";
    case OclBinOp::Lt: return "<";
    case OclBinOp::Le: return "<=";
    case OclBinOp::Gt: return ">";
    case OclBinOp::Ge: return ">=";
    case OclBinOp::Eq: return "=";
    case OclBinOp::Ne: return "<>";
    case OclBinOp::And: return "and";
    case OclBinOp::Or: return "or";
    case OclBinOp::Implies: return "implies";
  }
  return "?";
}

OclValue ocl_apply(OclBinOp op, const OclValue& lhs, const OclValue& rhs) {
  // String equality/inequality (e.g. self.alarmKind = "Signal").
  if ((op == OclBinOp::Eq || op == OclBinOp::Ne) &&
      std::holds_alternative<std::string>(lhs) &&
      std::holds_alternative<std::string>(rhs)) {
    const bool eq = std::get<std::string>(lhs) == std::get<std::string>(rhs);
    return OclValue{static_cast<double>(op == OclBinOp::Eq ? eq : !eq)};
  }
  const double a = ocl_num(lhs);
  const double b = ocl_num(rhs);
  switch (op) {
    case OclBinOp::Add: return OclValue{a + b};
    case OclBinOp::Sub: return OclValue{a - b};
    case OclBinOp::Mul: return OclValue{a * b};
    case OclBinOp::Div: return OclValue{a / b};
    case OclBinOp::Lt: return OclValue{static_cast<double>(a < b)};
    case OclBinOp::Le: return OclValue{static_cast<double>(a <= b)};
    case OclBinOp::Gt: return OclValue{static_cast<double>(a > b)};
    case OclBinOp::Ge: return OclValue{static_cast<double>(a >= b)};
    case OclBinOp::Eq: return OclValue{static_cast<double>(a == b)};
    case OclBinOp::Ne: return OclValue{static_cast<double>(a != b)};
    case OclBinOp::And: return OclValue{static_cast<double>(a != 0 && b != 0)};
    case OclBinOp::Or: return OclValue{static_cast<double>(a != 0 || b != 0)};
    case OclBinOp::Implies:
      return OclValue{static_cast<double>(a == 0 || b != 0)};
  }
  throw DedisysError("bad OCL operator");
}

namespace {

class NumberNode final : public OclNode {
 public:
  explicit NumberNode(double v) : value_(v) {}
  OclValue eval(const OclEnv&) const override { return OclValue{value_}; }
  void accept(OclVisitor& visitor) const override {
    visitor.on_number(value_);
  }

 private:
  double value_;
};

class StringNode final : public OclNode {
 public:
  explicit StringNode(std::string v) : value_(std::move(v)) {}
  OclValue eval(const OclEnv&) const override { return OclValue{value_}; }
  void accept(OclVisitor& visitor) const override {
    visitor.on_string(value_);
  }

 private:
  std::string value_;
};

class AttrNode final : public OclNode {
 public:
  explicit AttrNode(std::string name) : name_(std::move(name)) {}
  OclValue eval(const OclEnv& env) const override {
    return env.attribute(name_);  // reflective string-keyed access
  }
  void accept(OclVisitor& visitor) const override {
    visitor.on_attribute(name_);
  }

 private:
  std::string name_;
};

class ArgNode final : public OclNode {
 public:
  explicit ArgNode(std::size_t index) : index_(index) {}
  OclValue eval(const OclEnv& env) const override {
    return env.argument(index_);
  }
  void accept(OclVisitor& visitor) const override {
    visitor.on_argument(index_);
  }

 private:
  std::size_t index_;
};

class BinaryNode final : public OclNode {
 public:
  BinaryNode(OclBinOp op, OclExpr lhs, OclExpr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  OclValue eval(const OclEnv& env) const override {
    return ocl_apply(op_, lhs_->eval(env), rhs_->eval(env));
  }

  void accept(OclVisitor& visitor) const override {
    visitor.enter_binary(op_);
    lhs_->accept(visitor);
    rhs_->accept(visitor);
    visitor.leave_binary(op_);
  }

 private:
  OclBinOp op_;
  OclExpr lhs_;
  OclExpr rhs_;
};

class NotNode final : public OclNode {
 public:
  explicit NotNode(OclExpr inner) : inner_(std::move(inner)) {}
  OclValue eval(const OclEnv& env) const override {
    return OclValue{static_cast<double>(ocl_num(inner_->eval(env)) == 0)};
  }
  void accept(OclVisitor& visitor) const override {
    visitor.enter_not();
    inner_->accept(visitor);
    visitor.leave_not();
  }

 private:
  OclExpr inner_;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : in_(text) {}

  OclExpr parse_document() {
    OclExpr e = parse_implies();
    skip_ws();
    if (pos_ != in_.size()) throw ConfigError("trailing OCL input: " + in_);
    return e;
  }

 private:
  void skip_ws() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat_word(const char* w) {
    skip_ws();
    const std::size_t len = std::string(w).size();
    if (in_.compare(pos_, len, w) != 0) return false;
    const std::size_t end = pos_ + len;
    if (end < in_.size() &&
        (std::isalnum(static_cast<unsigned char>(in_[end])) != 0 ||
         in_[end] == '_')) {
      return false;  // identifier continues
    }
    pos_ = end;
    return true;
  }

  bool eat(const char* token) {
    skip_ws();
    const std::size_t len = std::string(token).size();
    if (in_.compare(pos_, len, token) != 0) return false;
    pos_ += len;
    return true;
  }

  OclExpr parse_implies() {
    OclExpr lhs = parse_or();
    while (eat_word("implies")) {
      lhs = std::make_shared<BinaryNode>(OclBinOp::Implies, lhs, parse_or());
    }
    return lhs;
  }

  OclExpr parse_or() {
    OclExpr lhs = parse_and();
    while (eat_word("or")) {
      lhs = std::make_shared<BinaryNode>(OclBinOp::Or, lhs, parse_and());
    }
    return lhs;
  }

  OclExpr parse_and() {
    OclExpr lhs = parse_unary();
    while (eat_word("and")) {
      lhs = std::make_shared<BinaryNode>(OclBinOp::And, lhs, parse_unary());
    }
    return lhs;
  }

  OclExpr parse_unary() {
    if (eat_word("not")) return std::make_shared<NotNode>(parse_unary());
    return parse_cmp();
  }

  OclExpr parse_cmp() {
    OclExpr lhs = parse_add();
    skip_ws();
    static constexpr std::pair<const char*, OclBinOp> kOps[] = {
        {"<=", OclBinOp::Le}, {">=", OclBinOp::Ge}, {"<>", OclBinOp::Ne},
        {"<", OclBinOp::Lt},  {">", OclBinOp::Gt},  {"=", OclBinOp::Eq},
    };
    for (const auto& [tok, op] : kOps) {
      if (eat(tok)) {
        return std::make_shared<BinaryNode>(op, lhs, parse_add());
      }
    }
    return lhs;
  }

  OclExpr parse_add() {
    OclExpr lhs = parse_mul();
    while (true) {
      if (eat("+")) {
        lhs = std::make_shared<BinaryNode>(OclBinOp::Add, lhs, parse_mul());
      } else if (eat("-")) {
        lhs = std::make_shared<BinaryNode>(OclBinOp::Sub, lhs, parse_mul());
      } else {
        return lhs;
      }
    }
  }

  OclExpr parse_mul() {
    OclExpr lhs = parse_prim();
    while (true) {
      if (eat("*")) {
        lhs = std::make_shared<BinaryNode>(OclBinOp::Mul, lhs, parse_prim());
      } else if (eat("/")) {
        lhs = std::make_shared<BinaryNode>(OclBinOp::Div, lhs, parse_prim());
      } else {
        return lhs;
      }
    }
  }

  OclExpr parse_prim() {
    skip_ws();
    if (eat_word("true")) return std::make_shared<NumberNode>(1);
    if (eat_word("false")) return std::make_shared<NumberNode>(0);
    if (pos_ < in_.size() && (in_[pos_] == '"' || in_[pos_] == '\'')) {
      return parse_string_literal();
    }
    if (eat("(")) {
      OclExpr e = parse_implies();
      if (!eat(")")) throw ConfigError("expected ')' in OCL: " + in_);
      return e;
    }
    if (eat_word("self")) {
      if (!eat(".")) throw ConfigError("expected '.' after self in: " + in_);
      return std::make_shared<AttrNode>(parse_ident());
    }
    if (in_.compare(pos_, 3, "arg") == 0 && pos_ + 3 < in_.size() &&
        std::isdigit(static_cast<unsigned char>(in_[pos_ + 3])) != 0) {
      pos_ += 3;
      const std::size_t idx = static_cast<std::size_t>(in_[pos_] - '0');
      ++pos_;
      return std::make_shared<ArgNode>(idx);
    }
    return parse_number();
  }

  std::string parse_ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) != 0 ||
            in_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) throw ConfigError("expected identifier in: " + in_);
    return in_.substr(start, pos_ - start);
  }

  OclExpr parse_string_literal() {
    const char quote = in_[pos_++];
    const std::size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
    if (pos_ >= in_.size()) {
      throw ConfigError("unterminated string literal in OCL: " + in_);
    }
    std::string value = in_.substr(start, pos_ - start);
    ++pos_;
    return std::make_shared<StringNode>(std::move(value));
  }

  OclExpr parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) != 0 ||
            in_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw ConfigError("expected number at '" + in_.substr(pos_) + "'");
    }
    return std::make_shared<NumberNode>(std::stod(in_.substr(start, pos_ - start)));
  }

  std::string in_;
  std::size_t pos_ = 0;
};

}  // namespace

OclExpr parse_ocl(const std::string& text) {
  return Parser(text).parse_document();
}

bool ocl_check(const OclExpr& expr, const OclEnv& env) {
  return ocl_num(expr->eval(env)) != 0;
}

}  // namespace dedisys
