// OCL-like expression interpreter (shared core).
//
// Constraints are specified in OCL at design time (Fig. 1.6); this small
// interpreter makes such expressions executable at runtime — both for the
// Chapter-2 "Dresden OCL" study approach and for runtime OclConstraint
// instances loaded from XML descriptors.
//
// Grammar:
//   expr := or ;  or := and ("or" and)* ;  and := unary ("and" unary)*
//   unary := "not" unary | cmp
//   cmp  := add (("<="|">="|"<"|">"|"="|"<>") add)?
//   add  := mul (("+"|"-") mul)* ;  mul := prim (("*"|"/") prim)*
//   prim := NUMBER | "self" "." IDENT | "arg" DIGIT | "(" expr ")"
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/errors.h"

namespace dedisys {

/// Boxed value produced/consumed by OCL evaluation.
using OclValue = std::variant<std::monostate, double, std::int64_t, std::string>;

inline double ocl_num(const OclValue& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<std::int64_t>(v)) {
    return static_cast<double>(std::get<std::int64_t>(v));
  }
  throw DedisysError("OCL value is not numeric");
}

/// Evaluation environment: resolves `self.<attr>` and `arg<N>`.
class OclEnv {
 public:
  virtual ~OclEnv() = default;
  [[nodiscard]] virtual OclValue attribute(const std::string& name) const = 0;
  [[nodiscard]] virtual OclValue argument(std::size_t index) const = 0;
};

class OclNode;
using OclExpr = std::shared_ptr<const OclNode>;

/// Binary operators of the expression grammar, public so structural
/// analyses can reason about parsed constraints.
enum class OclBinOp {
  Add, Sub, Mul, Div, Lt, Le, Gt, Ge, Eq, Ne, And, Or, Implies,
};

[[nodiscard]] const char* to_string(OclBinOp op);

/// Applies one binary operator to already-evaluated operands — the single
/// semantics shared by runtime evaluation and static constant folding.
/// Division by zero follows IEEE double semantics (inf/nan).
[[nodiscard]] OclValue ocl_apply(OclBinOp op, const OclValue& lhs,
                                 const OclValue& rhs);

/// Structural visitor over a parsed expression tree.  Traversal is
/// depth-first; composite nodes bracket their operands with enter/leave
/// callbacks so post-order (stack machine) analyses and pre-order scans
/// can both be written against the same interface.
class OclVisitor {
 public:
  virtual ~OclVisitor() = default;
  virtual void on_number(double) {}
  virtual void on_string(const std::string&) {}
  virtual void on_attribute(const std::string& /*name*/) {}
  virtual void on_argument(std::size_t /*index*/) {}
  virtual void enter_binary(OclBinOp) {}
  virtual void leave_binary(OclBinOp) {}
  virtual void enter_not() {}
  virtual void leave_not() {}
};

class OclNode {
 public:
  virtual ~OclNode() = default;
  [[nodiscard]] virtual OclValue eval(const OclEnv& env) const = 0;
  /// Structural introspection (read-set extraction, constant folding,
  /// diagnostics) without evaluating against an environment.
  virtual void accept(OclVisitor& visitor) const = 0;
};

/// Parses one OCL boolean expression; throws ConfigError on bad syntax.
[[nodiscard]] OclExpr parse_ocl(const std::string& text);

/// Evaluates a parsed constraint to a boolean (numeric results: != 0).
[[nodiscard]] bool ocl_check(const OclExpr& expr, const OclEnv& env);

}  // namespace dedisys
