// OCL-like expression interpreter (shared core).
//
// Constraints are specified in OCL at design time (Fig. 1.6); this small
// interpreter makes such expressions executable at runtime — both for the
// Chapter-2 "Dresden OCL" study approach and for runtime OclConstraint
// instances loaded from XML descriptors.
//
// Grammar:
//   expr := or ;  or := and ("or" and)* ;  and := unary ("and" unary)*
//   unary := "not" unary | cmp
//   cmp  := add (("<="|">="|"<"|">"|"="|"<>") add)?
//   add  := mul (("+"|"-") mul)* ;  mul := prim (("*"|"/") prim)*
//   prim := NUMBER | "self" "." IDENT | "arg" DIGIT | "(" expr ")"
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/errors.h"

namespace dedisys {

/// Boxed value produced/consumed by OCL evaluation.
using OclValue = std::variant<std::monostate, double, std::int64_t, std::string>;

inline double ocl_num(const OclValue& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<std::int64_t>(v)) {
    return static_cast<double>(std::get<std::int64_t>(v));
  }
  throw DedisysError("OCL value is not numeric");
}

/// Evaluation environment: resolves `self.<attr>` and `arg<N>`.
class OclEnv {
 public:
  virtual ~OclEnv() = default;
  [[nodiscard]] virtual OclValue attribute(const std::string& name) const = 0;
  [[nodiscard]] virtual OclValue argument(std::size_t index) const = 0;
};

class OclNode;
using OclExpr = std::shared_ptr<const OclNode>;

class OclNode {
 public:
  virtual ~OclNode() = default;
  [[nodiscard]] virtual OclValue eval(const OclEnv& env) const = 0;
};

/// Parses one OCL boolean expression; throws ConfigError on bad syntax.
[[nodiscard]] OclExpr parse_ocl(const std::string& text);

/// Evaluates a parsed constraint to a boolean (numeric results: != 0).
[[nodiscard]] bool ocl_check(const OclExpr& expr, const OclEnv& env);

}  // namespace dedisys
