#include "runtime/threaded_runtime.h"

#include <algorithm>
#include <utility>

namespace dedisys {

ThreadedRuntime::ThreadedRuntime(std::vector<NodeId> nodes, CostModel cost)
    : nodes_(std::move(nodes)),
      cost_(cost),
      start_(std::chrono::steady_clock::now()) {
  workers_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    index_of_.emplace(nodes_[i], i);
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn only once every Worker exists: a worker that races ahead must
  // never observe a half-built workers_ vector.
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
  timer_thread_ = std::thread([this] { timer_loop(); });
}

ThreadedRuntime::~ThreadedRuntime() {
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lk(worker->mu);
      worker->stop = true;
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

SimTime ThreadedRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

// -- deferred scheduling ------------------------------------------------------

void ThreadedRuntime::defer_in(SimDuration delay, std::function<void()> fn) {
  defer_at(now() + (delay > 0 ? delay : 0), std::move(fn));
}

void ThreadedRuntime::defer_at(SimTime when, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timers_.emplace(when, std::move(fn));
  }
  timer_cv_.notify_one();
}

void ThreadedRuntime::drain() {
  std::unique_lock<std::mutex> lk(timer_mu_);
  timer_idle_cv_.wait(lk, [&] { return timers_.empty() && !timer_running_; });
}

void ThreadedRuntime::timer_loop() {
  std::unique_lock<std::mutex> lk(timer_mu_);
  for (;;) {
    if (timer_stop_) return;
    if (timers_.empty()) {
      timer_cv_.wait(lk, [&] { return timer_stop_ || !timers_.empty(); });
      continue;
    }
    const SimTime due = timers_.begin()->first;
    const auto deadline = start_ + std::chrono::microseconds(due);
    const bool preempted = timer_cv_.wait_until(lk, deadline, [&] {
      return timer_stop_ || (!timers_.empty() && timers_.begin()->first < due);
    });
    if (preempted) continue;  // stopped, or an earlier timer arrived
    auto it = timers_.begin();
    std::function<void()> fn = std::move(it->second);
    timers_.erase(it);
    timer_running_ = true;
    lk.unlock();
    {
      Section section(*this);
      fn();  // a throwing timer task is a bug: let it terminate
    }
    lk.lock();
    timer_running_ = false;
    timer_idle_cv_.notify_all();
  }
}

// -- run_on -------------------------------------------------------------------

namespace {
// The Worker this thread drains, when it is a worker thread.  Worker
// threads belong to exactly one runtime for their whole lifetime.
thread_local void* t_current_worker = nullptr;
}  // namespace

void ThreadedRuntime::run_on(NodeId node, const std::function<void()>& fn) {
  Worker& worker = *workers_[index_of_.at(node)];
  Worker* self = static_cast<Worker*>(t_current_worker);
  if (self == &worker) {
    fn();  // already on the target node's worker: no mailbox round
    return;
  }
  auto task = std::make_shared<Task>();
  task->fn = fn;
  task->waiter = self;
  {
    std::lock_guard<std::mutex> lk(worker.mu);
    worker.tasks.push_back(task);
  }
  worker.cv.notify_one();
  // Release any held section while blocked so the worker can take it;
  // otherwise a sender inside a section would deadlock with its receiver.
  const int held = release_kernel();
  if (self == nullptr) {
    // Client thread: plain blocking wait.
    std::unique_lock<std::mutex> lk(task->mu);
    task->cv.wait(lk, [&] { return task->done.load(std::memory_order_acquire); });
  } else {
    // Worker thread: keep serving our own mailbox while blocked, so a
    // delivery chain that calls back into this node makes progress
    // instead of deadlocking on an undrained mailbox.
    while (!task->done.load(std::memory_order_acquire)) {
      std::shared_ptr<Task> own;
      {
        std::unique_lock<std::mutex> lk(self->mu);
        self->cv.wait(lk, [&] {
          return task->done.load(std::memory_order_acquire) ||
                 !self->tasks.empty();
        });
        if (!self->tasks.empty()) {
          own = std::move(self->tasks.front());
          self->tasks.pop_front();
        }
      }
      if (own) execute(*own);
    }
  }
  reacquire_kernel(held);
  if (task->error) std::rethrow_exception(task->error);
}

void ThreadedRuntime::execute(Task& task) {
  {
    Section section(*this);
    try {
      task.fn();
    } catch (...) {
      task.error = std::current_exception();
    }
  }
  {
    std::lock_guard<std::mutex> lk(task.mu);
    task.done.store(true, std::memory_order_release);
  }
  task.cv.notify_all();
  if (Worker* waiter = task.waiter) {
    // The sender may be a worker parked in its nested-serve wait above;
    // the empty lock/unlock pairs with its predicate check so the notify
    // cannot slip between check and sleep.
    { std::lock_guard<std::mutex> lk(waiter->mu); }
    waiter->cv.notify_all();
  }
}

void ThreadedRuntime::worker_loop(Worker& worker) {
  t_current_worker = &worker;
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lk(worker.mu);
      worker.cv.wait(lk, [&] { return worker.stop || !worker.tasks.empty(); });
      if (worker.stop && worker.tasks.empty()) return;
      task = std::move(worker.tasks.front());
      worker.tasks.pop_front();
    }
    execute(*task);
  }
}

// -- kernel lock --------------------------------------------------------------

void ThreadedRuntime::enter_section() {
  const auto me = std::this_thread::get_id();
  if (kernel_owner_.load(std::memory_order_relaxed) == me) {
    ++kernel_depth_;  // re-entry: we already hold kernel_
    return;
  }
  kernel_.lock();
  kernel_owner_.store(me, std::memory_order_relaxed);
  kernel_depth_ = 1;
}

void ThreadedRuntime::exit_section() {
  if (--kernel_depth_ == 0) {
    kernel_owner_.store(std::thread::id{}, std::memory_order_relaxed);
    kernel_.unlock();
  }
}

int ThreadedRuntime::release_kernel() {
  const auto me = std::this_thread::get_id();
  if (kernel_owner_.load(std::memory_order_relaxed) != me) return 0;
  const int depth = kernel_depth_;
  kernel_depth_ = 0;
  kernel_owner_.store(std::thread::id{}, std::memory_order_relaxed);
  kernel_.unlock();
  return depth;
}

void ThreadedRuntime::reacquire_kernel(int depth) {
  if (depth == 0) return;
  kernel_.lock();
  kernel_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  kernel_depth_ = depth;
}

// -- listeners ----------------------------------------------------------------

void ThreadedRuntime::subscribe(TopologyListener* listener) {
  std::lock_guard<std::mutex> lk(listeners_mu_);
  listeners_.push_back(listener);
}

void ThreadedRuntime::unsubscribe(TopologyListener* listener) {
  std::lock_guard<std::mutex> lk(listeners_mu_);
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

}  // namespace dedisys
