// Wall-clock backend of the Runtime seam: one worker thread per node,
// real steady_clock time, lock-guarded per-node mailboxes.
//
// This backend exists to measure real-hardware throughput and latency
// (bench/bench_wallclock_throughput).  It deliberately models nothing:
// charges are no-ops (real time passes instead), every node is always
// reachable, delivery never fails, and topology never changes — fault
// injection stays exclusive to the sim backend (docs/fault_injection.md).
//
// Concurrency model (docs/runtime.md):
//   * One "kernel" lock serializes protocol sections — regions that
//     manipulate shared middleware state.  It is re-entrant per thread
//     (depth counter) so nested client entry points compose.
//   * run_on posts the closure to the target node's mailbox and blocks
//     until its worker finishes it, RELEASING any held section while
//     waiting so the worker can take it — the same discipline a GIL uses.
//     When the caller already is the target's worker, it runs inline;
//     when the caller is a *different* node's worker, it keeps serving
//     its own mailbox while blocked (nested serve) so a delivery chain
//     that calls back into a waiting node cannot deadlock.
//   * A timer thread services defer_in/defer_at; drain() blocks until the
//     timer queue is empty and idle.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/runtime.h"
#include "sim/cost_model.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

class ThreadedRuntime final : public Runtime {
 public:
  /// Spawns one worker thread per node plus the timer thread.  The cost
  /// model is kept for components that *read* tunables (timeouts,
  /// thresholds); charged costs are discarded.
  ThreadedRuntime(std::vector<NodeId> nodes, CostModel cost);
  ~ThreadedRuntime() override;

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  // -- time -------------------------------------------------------------

  /// Microseconds of steady_clock time since construction.
  [[nodiscard]] SimTime now() const override;
  /// No skew modeling: every node shares the process clock.
  [[nodiscard]] SimTime local_now(NodeId /*node*/) const override {
    return now();
  }

  // -- cost accounting (all discarded — real time passes instead) -----------

  [[nodiscard]] const CostModel& cost() const override { return cost_; }
  void charge(SimDuration /*d*/) override {}
  bool charge_rpc(NodeId /*from*/, NodeId /*to*/) override { return true; }
  std::size_t charge_multicast(NodeId from,
                               const std::vector<NodeId>& receivers) override {
    std::size_t reached = 0;
    for (NodeId r : receivers) {
      if (r != from) ++reached;
    }
    return reached;
  }
  [[nodiscard]] SimDuration rpc_cost(NodeId /*from*/,
                                     NodeId /*to*/) const override {
    return 0;
  }

  // -- deferred scheduling --------------------------------------------------

  void defer_in(SimDuration delay, std::function<void()> fn) override;
  void defer_at(SimTime when, std::function<void()> fn) override;
  void drain() override;

  // -- messaging and topology --------------------------------------------------

  [[nodiscard]] const std::vector<NodeId>& nodes() const override {
    return nodes_;
  }
  [[nodiscard]] bool reachable(NodeId /*from*/, NodeId /*to*/) const override {
    return true;
  }
  [[nodiscard]] std::vector<NodeId> membership_set(
      NodeId /*from*/) const override {
    return nodes_;
  }
  [[nodiscard]] std::vector<NodeId> legacy_membership_set(
      NodeId /*from*/) const override {
    return nodes_;
  }
  Delivery delivery_verdict(NodeId /*from*/, NodeId /*to*/) override {
    return Delivery{};
  }
  bool reorder_receivers(NodeId /*from*/,
                         std::vector<NodeId>& /*targets*/) override {
    return false;
  }

  void run_on(NodeId node, const std::function<void()>& fn) override;

  /// Topology is static: listeners are recorded but never fired.
  void subscribe(TopologyListener* listener) override;
  void unsubscribe(TopologyListener* listener) override;

  // -- protocol sections ------------------------------------------------------

  void enter_section() override;
  void exit_section() override;

 private:
  /// One node: a mailbox and the worker thread draining it.  Declared
  /// before Task so a task can name the worker waiting on it.
  struct Worker;

  /// One posted closure plus its completion rendezvous.  `done` is atomic
  /// so a worker blocked in run_on can poll it from its own nested-serve
  /// loop without taking task->mu.  When `waiter` is set, completion also
  /// pokes that worker's mailbox condition variable.
  struct Task {
    std::function<void()> fn;
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> done{false};
    std::exception_ptr error;
    Worker* waiter = nullptr;
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Task>> tasks;
    bool stop = false;
    std::thread thread;
  };

  void worker_loop(Worker& worker);
  void timer_loop();
  /// Runs one task under a Section and signals its completion.
  void execute(Task& task);

  /// Fully releases the kernel lock when this thread holds it; returns the
  /// held depth (0 when not the owner) for reacquire_kernel.
  int release_kernel();
  void reacquire_kernel(int depth);

  std::vector<NodeId> nodes_;
  CostModel cost_;
  std::chrono::steady_clock::time_point start_;

  std::unordered_map<NodeId, std::size_t> index_of_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Kernel lock.  kernel_depth_ is touched only while kernel_ is held by
  // the touching thread; kernel_owner_ lets a thread cheaply recognise its
  // own re-entry.
  std::mutex kernel_;
  std::atomic<std::thread::id> kernel_owner_{};
  int kernel_depth_ = 0;

  // Timer thread state, all guarded by timer_mu_.
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;       ///< wakes the timer thread
  std::condition_variable timer_idle_cv_;  ///< wakes drain()
  std::multimap<SimTime, std::function<void()>> timers_;
  bool timer_running_ = false;
  bool timer_stop_ = false;
  std::thread timer_thread_;

  std::mutex listeners_mu_;
  std::vector<TopologyListener*> listeners_;
};

}  // namespace dedisys
