// Deterministic-simulation backend of the Runtime seam.
//
// Every method delegates 1:1 to the discrete-event substrate (SimClock,
// EventQueue, SimNetwork) with no added arithmetic and no extra randomness
// draws, so a sim-backed run is byte-identical to the pre-seam code path:
// same seed, same fault plan, same trace timeline — the property every
// chaos/gray/memo gate in scripts/check.sh pins.
//
// The standalone constructor serves unit fixtures that only need time and
// cost accounting (transaction manager, record store, CCMgr tests): it
// owns an empty SimNetwork, so network-facing methods degenerate
// harmlessly (no nodes, nothing reachable).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/runtime.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace dedisys {

class SimRuntime final : public Runtime {
 public:
  /// Full substrate (the Cluster's form): clock, network and event queue
  /// are owned by the host and shared with sim-only drivers (fault
  /// engine, chaos harness, scripted scenarios).
  SimRuntime(SimClock& clock, SimNetwork& net, EventQueue& events)
      : clock_(clock), net_(&net), events_(&events) {}

  /// Network without an external event queue (GCS-level fixtures).
  SimRuntime(SimClock& clock, SimNetwork& net)
      : clock_(clock),
        owned_events_(std::make_unique<EventQueue>(clock)),
        net_(&net),
        events_(owned_events_.get()) {}

  /// Standalone substrate for unit fixtures: time + costs only.  The
  /// internally owned network has no nodes, so membership and messaging
  /// methods return empty/unreachable.
  SimRuntime(SimClock& clock, const CostModel& cost)
      : clock_(clock),
        owned_net_(std::make_unique<SimNetwork>(clock, cost)),
        owned_events_(std::make_unique<EventQueue>(clock)),
        net_(owned_net_.get()),
        events_(owned_events_.get()) {}

  SimRuntime(const SimRuntime&) = delete;
  SimRuntime& operator=(const SimRuntime&) = delete;

  // -- time -------------------------------------------------------------

  [[nodiscard]] SimTime now() const override { return clock_.now(); }
  [[nodiscard]] SimTime local_now(NodeId node) const override {
    return net_->local_now(node);
  }

  // -- cost accounting ----------------------------------------------------

  [[nodiscard]] const CostModel& cost() const override { return net_->cost(); }
  void charge(SimDuration d) override { clock_.advance(d); }
  bool charge_rpc(NodeId from, NodeId to) override {
    return net_->charge_rpc(from, to);
  }
  std::size_t charge_multicast(NodeId from,
                               const std::vector<NodeId>& receivers) override {
    return net_->charge_multicast(from, receivers);
  }
  [[nodiscard]] SimDuration rpc_cost(NodeId from, NodeId to) const override {
    return net_->rpc_cost(from, to);
  }

  // -- deferred scheduling --------------------------------------------------

  void defer_in(SimDuration delay, std::function<void()> fn) override {
    events_->schedule_in(delay, std::move(fn));
  }
  void defer_at(SimTime when, std::function<void()> fn) override {
    events_->schedule_at(when, std::move(fn));
  }
  void drain() override { events_->run_all(); }

  // -- messaging and topology --------------------------------------------------

  [[nodiscard]] const std::vector<NodeId>& nodes() const override {
    return net_->nodes();
  }
  [[nodiscard]] bool reachable(NodeId from, NodeId to) const override {
    return net_->reachable(from, to);
  }
  [[nodiscard]] std::vector<NodeId> membership_set(NodeId from) const override {
    return net_->mutually_reachable_set(from);
  }
  [[nodiscard]] std::vector<NodeId> legacy_membership_set(
      NodeId from) const override {
    return net_->direct_reachable_set(from);
  }
  Delivery delivery_verdict(NodeId from, NodeId to) override {
    return net_->delivery_verdict(from, to);
  }

  /// The seeded multicast reorder draw (formerly GroupCommunication's
  /// maybe_reorder).  Randomness is consumed only while faults are active
  /// and in exactly the pre-seam order, keeping seeded runs byte-identical.
  bool reorder_receivers(NodeId from, std::vector<NodeId>& targets) override {
    if (!net_->faults_active() || targets.size() < 2) return false;
    double p = 0.0;
    for (NodeId t : targets) {
      const LinkFaults& f = net_->effective_faults(from, t);
      if (f.reorder > p) p = f.reorder;
    }
    if (p <= 0.0) return false;
    Rng& rng = net_->fault_rng();
    if (!rng.chance(p)) return false;
    for (std::size_t i = targets.size(); i > 1; --i) {
      std::swap(targets[i - 1], targets[rng.below(i)]);
    }
    return true;
  }

  /// The whole simulated cluster shares one thread: "running on a node"
  /// is a direct call within the sender's stack (which is also what lets
  /// the ambient trace context cross nodes automatically).
  void run_on(NodeId /*node*/, const std::function<void()>& fn) override {
    fn();
  }

  void subscribe(TopologyListener* listener) override {
    net_->subscribe(listener);
  }
  void unsubscribe(TopologyListener* listener) override {
    net_->unsubscribe(listener);
  }

  // enter_section/exit_section: inherited no-ops — single-threaded.

  /// The underlying network, for sim-only drivers (fault engine, chaos).
  [[nodiscard]] SimNetwork& network() { return *net_; }

 private:
  SimClock& clock_;
  std::unique_ptr<SimNetwork> owned_net_;
  std::unique_ptr<EventQueue> owned_events_;
  SimNetwork* net_;
  EventQueue* events_;
};

}  // namespace dedisys
