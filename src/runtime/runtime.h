// The pluggable execution runtime: one interface owning the three
// capabilities protocol code used to pull directly from the sim layer —
// time, deferred scheduling and inter-node messaging/cost.
//
// Protocol components (GCS, transaction manager, replication manager,
// CCMgr, persistence, the node kernel) are written against this seam only.
// Two backends implement it:
//
//   * SimRuntime (src/runtime/sim_runtime.h) delegates 1:1 to the
//     deterministic SimClock / EventQueue / SimNetwork, so a sim-backed
//     run is byte-identical to the pre-seam code path — every chaos,
//     gray, memo and seed-pinned suite stays on it;
//   * ThreadedRuntime (src/runtime/threaded_runtime.h) runs on real
//     steady_clock time with one worker thread per node and lock-guarded
//     mailboxes — the repo's first wall-clock execution surface.
//
// The contract each backend must honor is documented in docs/runtime.md.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/cost_model.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

/// Observer of topology changes (the GMS subscribes to drive view changes).
/// Lives at the runtime seam: the sim backend fires it from SimNetwork
/// fault operations; the threaded backend has a static topology and never
/// fires it.
class TopologyListener {
 public:
  virtual ~TopologyListener() = default;
  virtual void on_topology_changed() = 0;
};

/// Per-message delivery decision for one directed link.  The sim backend
/// draws it from the seeded fault generator; the threaded backend always
/// returns the default (delivered, one copy, no extra delay) — real links
/// in one process do not lose messages.
struct Delivery {
  bool delivered = true;       ///< false: the message is lost this attempt
  std::size_t copies = 1;      ///< >1: duplicated in flight
  SimDuration extra_delay = 0; ///< added to the nominal link latency
};

/// Abstract execution runtime.  All durations/timestamps are microseconds:
/// virtual ones on the sim backend, steady_clock ones on the threaded
/// backend.  Charged costs (`charge*`) advance the virtual clock in the
/// sim and are no-ops under wall-clock time — real time passes instead.
class Runtime : public TimeSource {
 public:
  ~Runtime() override = default;

  // -- time -------------------------------------------------------------

  // SimTime now() const  — inherited from TimeSource.

  /// The node's local notion of now (the shared time plus the node's clock
  /// skew on the sim backend; plain now() on the threaded backend).  Feeds
  /// per-replica update stamps, never the schedule itself.
  [[nodiscard]] virtual SimTime local_now(NodeId node) const = 0;

  // -- cost accounting ----------------------------------------------------

  [[nodiscard]] virtual const CostModel& cost() const = 0;

  /// Charges a modeled duration: advances the virtual clock (sim) or does
  /// nothing (threaded — the work itself takes wall time).
  virtual void charge(SimDuration d) = 0;

  /// Charges one point-to-point message; returns false when the
  /// destination is unreachable (the message is lost, not retried).
  virtual bool charge_rpc(NodeId from, NodeId to) = 0;

  /// Charges a synchronous acked multicast from `from` to `receivers`
  /// (self excluded); returns the number of receivers reached.
  virtual std::size_t charge_multicast(NodeId from,
                                       const std::vector<NodeId>& receivers) = 0;

  /// Modeled cost of one point-to-point message (routing and slow-node
  /// scaling included on the sim backend; zero on the threaded backend).
  [[nodiscard]] virtual SimDuration rpc_cost(NodeId from, NodeId to) const = 0;

  // -- deferred scheduling --------------------------------------------------

  /// Runs `fn` (at least) `delay` after now.
  virtual void defer_in(SimDuration delay, std::function<void()> fn) = 0;

  /// Runs `fn` at an absolute timestamp (clamped to now).
  virtual void defer_at(SimTime when, std::function<void()> fn) = 0;

  /// Executes every deferred task, including tasks deferred while
  /// draining.  Sim: drains the event queue; threaded: blocks until the
  /// timer queue is empty and idle.  Must not be called from inside a
  /// protocol section.
  virtual void drain() = 0;

  // -- messaging and topology --------------------------------------------------

  /// All registered nodes, in registration order.
  [[nodiscard]] virtual const std::vector<NodeId>& nodes() const = 0;

  /// Deliverability of `from -> to` (routed around one-way cuts on the sim
  /// backend; always true on the threaded backend).
  [[nodiscard]] virtual bool reachable(NodeId from, NodeId to) const = 0;

  /// Nodes `from` can exchange messages with in both directions, itself
  /// included — the basis for view formation and primary election.
  [[nodiscard]] virtual std::vector<NodeId> membership_set(NodeId from) const = 0;

  /// The pre-gray-failure membership basis: outbound reachability alone.
  /// Kept only for the legacy_unidirectional_views regression pin.
  [[nodiscard]] virtual std::vector<NodeId> legacy_membership_set(
      NodeId from) const = 0;

  /// Draws the fate of one message on the directed link `from -> to`.
  virtual Delivery delivery_verdict(NodeId from, NodeId to) = 0;

  /// Shuffles a multicast's receiver order when a reorder fault is active
  /// on any outgoing link (fair-lossy links do not guarantee FIFO across
  /// receivers); returns whether the order changed.  Fault-free backends
  /// return false without consuming randomness.
  virtual bool reorder_receivers(NodeId from, std::vector<NodeId>& targets) = 0;

  /// Executes `fn` in the context of `node`: a direct call on the sim
  /// backend (the whole cluster shares one thread), a mailbox round on the
  /// threaded backend (the task runs on the node's worker thread; the
  /// caller blocks until it completes, releasing any held protocol section
  /// while waiting).  Exceptions propagate to the caller.
  virtual void run_on(NodeId node, const std::function<void()>& fn) = 0;

  /// Subscribes to topology changes (sim backend only fires them).
  virtual void subscribe(TopologyListener* listener) = 0;
  virtual void unsubscribe(TopologyListener* listener) = 0;

  // -- protocol sections ------------------------------------------------------

  /// Marks a protocol section: a region of shared middleware state
  /// manipulation that must not interleave with other clients'.  No-ops on
  /// the single-threaded sim backend; a re-entrant kernel lock on the
  /// threaded backend.  Senders blocked in run_on release the section so
  /// the receiving worker can take it (see docs/runtime.md).
  virtual void enter_section() {}
  virtual void exit_section() {}

  /// RAII protocol section.
  class Section {
   public:
    explicit Section(Runtime& rt) : rt_(rt) { rt_.enter_section(); }
    ~Section() { rt_.exit_section(); }
    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;

   private:
    Runtime& rt_;
  };
};

}  // namespace dedisys
