// Cluster-wide feature flags and the execution-backend selector.
//
// Before this header existed, the same toggles (`validation_memo`,
// `validation_scheduler`, `legacy_unidirectional_views`, the observability
// pair) were declared three times — on ClusterConfig, NodeOptions and
// ChaosOptions — and hand-copied between them at every construction site.
// FeatureFlags is the single value type all three embed; copying the whole
// struct is the only propagation step left, so a flag added here reaches
// every layer without further plumbing.
#pragma once

#include <cstddef>

namespace dedisys {

/// Which execution backend a Cluster runs on (see docs/runtime.md).
enum class RuntimeBackend {
  /// Deterministic discrete-event simulation (SimClock + EventQueue +
  /// SimNetwork).  Every chaos, gray, memo and seed-pinned test runs here;
  /// same seed, byte-identical timeline.
  Sim,
  /// Wall-clock execution: one thread per node, real steady_clock time,
  /// lock-guarded per-node mailboxes.  No fault injection, no tracing —
  /// this backend exists to measure real-hardware throughput/latency.
  Threaded,
};

/// Feature toggles shared by ClusterConfig, NodeOptions and ChaosOptions.
struct FeatureFlags {
  /// Structured event tracing + latency histograms (src/obs).  Off by
  /// default: instrumented hot paths then cost a single branch.  Ignored
  /// (forced off) on the threaded backend — the trace hub's ambient span
  /// stack is single-threaded by design.
  bool observability = false;
  /// Ring-buffer capacity of the trace recorder when observability is on.
  std::size_t trace_capacity = 4096;
  /// Version-stamped validation memoization: cache definite constraint
  /// outcomes keyed by the read-set entities' write stamps.  Off by
  /// default — memo-off runs are byte-identical to builds without it.
  bool validation_memo = false;
  /// Interference-aware validation scheduling (PR 8): reconciliation
  /// batches are ordered by the interference-graph clusters of the
  /// repository's ConfigAnalysis.  Off by default — the legacy
  /// `<constraint>@<object>` identity order is then byte-identical.
  bool validation_scheduler = false;
  /// Pre-gray-failure GMS behavior: derive views from outbound
  /// reachability alone.  Under a one-way link cut this elects two
  /// primaries inside one strongly-connected component; only tests
  /// pinning that regression should set it.
  bool legacy_unidirectional_views = false;
};

/// Backend selection plus the flags — the value type a host embeds when it
/// wants to configure a Runtime wholesale.
struct RuntimeOptions {
  RuntimeBackend backend = RuntimeBackend::Sim;
  FeatureFlags flags;
};

}  // namespace dedisys
