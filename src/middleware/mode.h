// Major system states as perceived by each node (Fig. 1.4).
#pragma once

#include <string>

namespace dedisys {

enum class SystemMode {
  Healthy,       ///< No failures or inconsistencies present.
  Degraded,      ///< Node/link failures present; threats may be introduced.
  Reconciling,   ///< Failures repaired; inconsistencies being cleaned up.
};

[[nodiscard]] inline std::string to_string(SystemMode m) {
  switch (m) {
    case SystemMode::Healthy: return "healthy";
    case SystemMode::Degraded: return "degraded";
    case SystemMode::Reconciling: return "reconciling";
  }
  return "?";
}

}  // namespace dedisys
