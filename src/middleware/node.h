// DeDiSys node kernel: per-node service wiring (Fig. 4.1).
//
// Each node hosts the full middleware stack: transaction manager,
// persistence, group membership endpoint, replication manager, constraint
// consistency manager and the invocation service with its interceptor
// chain.  Client calls enter through invoke()/create()/destroy(), are
// reified into Invocation objects, routed to the execution node and run
// through the server-side interceptor stack
//     [CCM interceptor, replication interceptor] -> terminal dispatcher.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "constraints/ccmgr.h"
#include "constraints/repository.h"
#include "constraints/threats.h"
#include "gcs/group_comm.h"
#include "gcs/membership.h"
#include "middleware/mode.h"
#include "objects/invocation.h"
#include "obs/observability.h"
#include "objects/method_context.h"
#include "objects/naming.h"
#include "persist/history_store.h"
#include "persist/record_store.h"
#include "replication/adapt.h"
#include "replication/manager.h"
#include "runtime/options.h"
#include "tx/tx_manager.h"

namespace dedisys {

class Cluster;
class DedisysNode;

/// Mediated object access bound to a node: local reads are free, remote
/// reads are charged as RPC round-trips, nested invocations re-enter the
/// middleware (AOP-style interception of internal calls, Section 4.2.4).
class NodeObjectAccessor final : public ObjectAccessor {
 public:
  explicit NodeObjectAccessor(DedisysNode& node) : node_(&node) {}

  const Entity& read(ObjectId id) override;
  Value invoke(ObjectId id, const MethodSignature& method,
               std::vector<Value> args) override;

  void set_current_tx(TxId tx) { tx_ = tx; }
  [[nodiscard]] TxId current_tx() const { return tx_; }

 private:
  DedisysNode* node_;
  TxId tx_;
};

/// How business operations on still-threatened objects behave while the
/// reconciliation phase runs (Section 3.3: "block, if the reconciliation
/// is already underway, or be treated as if the partition were still in
/// place, thereby introducing new threats").
enum class ReconciliationBusinessPolicy {
  Proceed,          ///< run normally (satisfied full checks clean threats)
  BlockThreatened,  ///< abort operations touching threatened objects
  TreatAsDegraded,  ///< validate as in degraded mode (new threats possible)
};

struct NodeOptions {
  ReplicationProtocol protocol = ReplicationProtocol::PrimaryPartition;
  bool with_replication = true;
  bool with_ccm = true;
  bool keep_history = true;
  SatisfactionDegree default_min_degree = SatisfactionDegree::Satisfied;
  ReconciliationBusinessPolicy reconciliation_policy =
      ReconciliationBusinessPolicy::Proceed;
  /// Feature toggles shared with ClusterConfig and ChaosOptions (see
  /// runtime/options.h).  The node consumes validation_memo,
  /// validation_scheduler and legacy_unidirectional_views; the
  /// observability pair is cluster-level.
  FeatureFlags flags;
};

class DedisysNode final : public ViewListener {
 public:
  DedisysNode(Cluster& cluster, NodeId id, const NodeOptions& options);
  ~DedisysNode() override = default;

  DedisysNode(const DedisysNode&) = delete;
  DedisysNode& operator=(const DedisysNode&) = delete;

  // -- services ------------------------------------------------------------

  [[nodiscard]] NodeId id() const { return id_; }
  /// The cluster-wide distributed transaction manager (JBoss TS analogue):
  /// transactions begun on any node propagate with the invocation.
  TransactionManager& tx() { return *tm_; }
  ConstraintConsistencyManager& ccmgr() { return *ccmgr_; }
  ReplicationManager& replication() { return *repl_; }
  GroupMembershipService& gms() { return *gms_; }
  RecordStore& db() { return *db_; }
  NamingService& naming() { return naming_; }
  NodeObjectAccessor& accessor() { return *accessor_; }
  Cluster& cluster() { return *cluster_; }

  [[nodiscard]] SystemMode mode() const { return mode_; }
  void set_mode(SystemMode m) {
    change_mode(m);
    if (m != SystemMode::Reconciling) {
      threatened_cache_.clear();
      ccmgr_->clear_forced_stale();
    }
  }

  void set_reconciliation_policy(ReconciliationBusinessPolicy p) {
    options_.reconciliation_policy = p;
  }

  /// Appends a custom interceptor to this node's server-side chain
  /// (the standardjboss.xml extension point of Section 4.2.4).  Runs
  /// after the built-in CCM and replication interceptors.
  void add_server_interceptor(std::shared_ptr<Interceptor> interceptor) {
    server_chain_.add(std::move(interceptor));
  }

  /// ADAPT component monitors (Section 4.3): the client monitor may
  /// redirect reads to other replicas; server monitors observe component
  /// lifecycle and invocations on this node.
  void set_client_monitor(std::shared_ptr<ClientComponentMonitor> monitor) {
    client_monitor_ = std::move(monitor);
  }
  void add_server_monitor(std::shared_ptr<ServerComponentMonitor> monitor) {
    server_monitors_.push_back(std::move(monitor));
  }

  /// Names of the configured server-side interceptors, in order.
  [[nodiscard]] std::vector<std::string> server_interceptor_names() const {
    return server_chain_.names();
  }

  // -- client API ----------------------------------------------------------

  /// Creates an entity of `class_name` replicated per the node options;
  /// `application` scopes which constraint repository applies (Section 5.3).
  /// `replica_nodes` confines the replica set to an explicit node group
  /// (the sharded front door passes the owning shard's replica group);
  /// default: every cluster node (full replication).
  ObjectId create(TxId tx, const std::string& class_name,
                  const std::string& application = "",
                  std::optional<std::vector<NodeId>> replica_nodes =
                      std::nullopt);

  /// Deletes an entity from all reachable replicas.
  void destroy(TxId tx, ObjectId id);

  /// Invokes `method_name` on the logical object `target`, routing to the
  /// correct execution node and running the interceptor chain.
  Value invoke(TxId tx, ObjectId target, const std::string& method_name,
               std::vector<Value> args = {});

  /// Nested invocation from inside a method body (AOP interception path).
  Value invoke_nested(TxId tx, ObjectId target,
                      const MethodSignature& method, std::vector<Value> args);

  // -- ViewListener ----------------------------------------------------------

  void on_view_installed(const View& installed, const View& previous) override;

 private:
  friend class NodeObjectAccessor;

  /// Assigns the mode, recording a mode.transition trace event on change.
  void change_mode(SystemMode m);

  /// Runs the server-side chain on THIS node (the execution node).
  Value execute_server(Invocation& inv);

  Value terminal_dispatch(Invocation& inv);

  const MethodDescriptor& resolve_method(const std::string& class_name,
                                         const std::string& method_name,
                                         std::size_t arity) const;

  Cluster* cluster_;
  NodeId id_;
  NodeOptions options_;
  obs::Observability* obs_ = nullptr;

  std::unique_ptr<RecordStore> db_;
  std::unique_ptr<ReplicaHistoryStore> history_;
  TransactionManager* tm_;
  std::unique_ptr<GroupMembershipService> gms_;
  std::unique_ptr<ReplicationManager> repl_;
  std::unique_ptr<ConstraintConsistencyManager> ccmgr_;
  std::unique_ptr<NodeObjectAccessor> accessor_;
  /// Applies the reconciliation business policy to an invocation target;
  /// may throw (block) or return true when the op must be treated as
  /// degraded.
  bool apply_reconciliation_policy(ObjectId target);

  void notify_created(ObjectId id, const std::string& class_name) {
    for (auto& m : server_monitors_) m->on_created(id, class_name);
  }
  void notify_deleted(ObjectId id) {
    for (auto& m : server_monitors_) m->on_deleted(id);
  }

  NamingService naming_;
  InterceptorStack server_chain_;
  SystemMode mode_ = SystemMode::Healthy;
  std::unordered_set<ObjectId> threatened_cache_;
  std::shared_ptr<ClientComponentMonitor> client_monitor_;
  std::vector<std::shared_ptr<ServerComponentMonitor>> server_monitors_;
};

}  // namespace dedisys
