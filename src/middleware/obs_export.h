// Cluster-level observability export: the JSON document served by the
// AdminConsole and the web /metrics endpoint.  Lives above the middleware
// layer (obs itself must not depend on the cluster).
#pragma once

#include <cstdio>
#include <string>

#include "analysis/report.h"
#include "constraints/repository.h"
#include "middleware/metrics.h"
#include "obs/analyze.h"
#include "obs/export.h"

namespace dedisys::obs {

[[nodiscard]] inline Json to_json(const analysis::AnalysisReport& r) {
  Json out = Json::object();
  out.set("opaque", r.opaque);
  out.set("locality", to_string(r.locality));
  out.set("triviality", to_string(r.triviality));
  out.set("verdict", to_string(r.verdict));
  out.set("dead_code", r.has_dead_code);
  out.set("prunable", r.prunable);
  if (!r.sat_box.empty()) {
    Json box = Json::object();
    for (const auto& [attr, iv] : r.sat_box) {
      box.set(attr, analysis::to_string(iv));
    }
    out.set("sat_box", std::move(box));
  }
  Json attributes = Json::array();
  for (const std::string& a : r.read_set.attributes) attributes.push_back(a);
  Json arguments = Json::array();
  for (std::size_t i : r.read_set.arguments) arguments.push_back(i);
  Json read_set = Json::object();
  read_set.set("attributes", std::move(attributes));
  read_set.set("arguments", std::move(arguments));
  out.set("read_set", std::move(read_set));
  Json diagnostics = Json::array();
  for (const analysis::Diagnostic& d : r.diagnostics) {
    Json diag = Json::object();
    diag.set("severity", to_string(d.severity));
    diag.set("message", d.message);
    diagnostics.push_back(std::move(diag));
  }
  out.set("diagnostics", std::move(diagnostics));
  return out;
}

/// Static-analysis reports of every registered constraint (null entries
/// for constraints that were never analyzed).
[[nodiscard]] inline Json analysis_to_json(
    const ConstraintRepository& repository) {
  Json out = Json::array();
  for (const ConstraintRegistration& reg : repository.registrations()) {
    Json entry = Json::object();
    entry.set("name", reg.constraint->name());
    entry.set("analysis",
              reg.analysis != nullptr ? to_json(*reg.analysis) : Json());
    out.push_back(std::move(entry));
  }
  return out;
}

/// Whole-configuration analysis block (PR 8): per-verdict tallies,
/// conflict/subsumption pairs and the interference-graph summary.  Null
/// when the analyzer has not run since the last repository change.
[[nodiscard]] inline Json config_analysis_to_json(
    const ConstraintRepository& repository) {
  const analysis::ConfigAnalysis* cfg = repository.config_analysis();
  if (cfg == nullptr) return Json();
  Json out = Json::object();
  Json verdicts = Json::object();
  verdicts.set("tautologies", cfg->tautologies);
  verdicts.set("unsatisfiable", cfg->unsatisfiable);
  verdicts.set("contingent", cfg->contingent);
  out.set("verdicts", std::move(verdicts));
  Json conflicts = Json::array();
  for (const auto& c : cfg->conflicts) {
    Json pair = Json::object();
    pair.set("first", c.first);
    pair.set("second", c.second);
    pair.set("attribute", c.attribute);
    conflicts.push_back(std::move(pair));
  }
  out.set("conflicts", std::move(conflicts));
  Json subsumptions = Json::array();
  for (const auto& s : cfg->subsumptions) {
    Json pair = Json::object();
    pair.set("stronger", s.stronger);
    pair.set("weaker", s.weaker);
    subsumptions.push_back(std::move(pair));
  }
  out.set("subsumptions", std::move(subsumptions));
  Json graph = Json::object();
  graph.set("edges", cfg->interference.size());
  graph.set("clusters", cfg->clusters);
  graph.set("constraints", cfg->cluster_of.size());
  out.set("interference", std::move(graph));
  return out;
}

[[nodiscard]] inline Json to_json(const ClusterMetrics& m) {
  Json nodes = Json::array();
  for (const NodeMetrics& n : m.nodes) {
    Json node = Json::object();
    node.set("node", n.node.value());
    node.set("mode", to_string(n.mode));
    node.set("db_reads", n.db_reads);
    node.set("db_writes", n.db_writes);
    node.set("db_deletes", n.db_deletes);
    node.set("updates_propagated", n.updates_propagated);
    node.set("backups_applied", n.backups_applied);
    node.set("history_records", n.history_records);
    node.set("stale_skipped", n.stale_skipped);
    node.set("validations", n.validations);
    node.set("evaluations_skipped", n.evaluations_skipped);
    node.set("evaluations_proven", n.evaluations_proven);
    node.set("reconcile_scheduled", n.reconcile_scheduled);
    node.set("threats_detected", n.threats_detected);
    node.set("threats_accepted", n.threats_accepted);
    node.set("threats_rejected", n.threats_rejected);
    node.set("violations", n.violations);
    node.set("memo_hits", n.memo_hits);
    node.set("memo_misses", n.memo_misses);
    node.set("memo_stores", n.memo_stores);
    node.set("memo_invalidated", n.memo_invalidated);
    nodes.push_back(std::move(node));
  }
  Json faults = Json::object();
  faults.set("messages_dropped", m.faults.messages_dropped);
  faults.set("messages_duplicated", m.faults.messages_duplicated);
  faults.set("messages_delayed", m.faults.messages_delayed);
  faults.set("crashes", m.faults.crashes);
  faults.set("restarts", m.faults.restarts);
  faults.set("gc_retries", m.faults.gc_retries);
  faults.set("gc_gave_up", m.faults.gc_gave_up);
  faults.set("gc_duplicates_suppressed", m.faults.gc_duplicates_suppressed);
  faults.set("gc_reordered", m.faults.gc_reordered);
  faults.set("tx_commits", m.faults.tx_commits);
  faults.set("tx_aborts", m.faults.tx_aborts);
  faults.set("tx_presumed_aborts", m.faults.tx_presumed_aborts);
  faults.set("tx_in_doubt", m.faults.tx_in_doubt);
  Json out = Json::object();
  out.set("sim_time_us", m.sim_time);
  out.set("stored_threat_identities", m.stored_threat_identities);
  out.set("stored_threat_occurrences", m.stored_threat_occurrences);
  out.set("live_objects", m.live_objects);
  // Both caches of the validation path, side by side: the repository's
  // query cache (what to validate) and the validation memo (what the
  // outcome was).
  Json lookup_cache = Json::object();
  lookup_cache.set("searches", m.lookup_searches);
  lookup_cache.set("hits", m.lookup_cache_hits);
  lookup_cache.set("misses", m.lookup_cache_misses);
  Json memo = Json::object();
  memo.set("hits", m.total(&NodeMetrics::memo_hits));
  memo.set("misses", m.total(&NodeMetrics::memo_misses));
  memo.set("stores", m.total(&NodeMetrics::memo_stores));
  memo.set("invalidated", m.total(&NodeMetrics::memo_invalidated));
  memo.set("lookup_cache", std::move(lookup_cache));
  out.set("memo", std::move(memo));
  out.set("faults", std::move(faults));
  out.set("nodes", std::move(nodes));
  return out;
}

/// Front-door/shard block: replica groups, acting primary identity, queue
/// depth and the shed counters, per shard (day-one observability of the
/// admission layer).
[[nodiscard]] inline Json shards_to_json(Cluster& cluster) {
  shard::ShardMap& map = cluster.shards();
  shard::FrontDoor& door = cluster.front_door();
  Json shards = Json::array();
  for (shard::ShardId s = 0; s < map.shard_count(); ++s) {
    const shard::FrontDoor::ShardStats& st = door.stats(s);
    Json nodes = Json::array();
    for (NodeId n : map.nodes_of(s)) nodes.push_back(n.value());
    Json shed = Json::object();
    shed.set("queue_full", st.shed_queue_full);
    shed.set("fee_below_required", st.shed_fee);
    shed.set("shard_unavailable", st.shed_unavailable);
    shed.set("bad_request", st.shed_bad_request);
    Json entry = Json::object();
    entry.set("shard", s);
    entry.set("nodes", std::move(nodes));
    entry.set("home", map.home_of(s).value());
    entry.set("primary", door.current_target(s).value());
    entry.set("queue_depth", door.queue_depth(s));
    entry.set("max_queue_depth", st.max_depth);
    entry.set("required_fee", door.required_fee(s));
    entry.set("submitted", st.submitted);
    entry.set("admitted", st.admitted);
    entry.set("applied", st.applied);
    entry.set("committed", st.committed);
    entry.set("aborted", st.aborted);
    entry.set("forwarded", st.forwarded);
    entry.set("evicted", st.evicted);
    entry.set("batches", st.batches);
    entry.set("shed", std::move(shed));
    shards.push_back(std::move(entry));
  }
  Json out = Json::object();
  out.set("count", map.shard_count());
  out.set("assigned_objects", map.assigned_count());
  out.set("shards", std::move(shards));
  return out;
}

/// The full observability document of a cluster: counters snapshot,
/// latency percentiles and the retained event trace.
[[nodiscard]] inline Json export_cluster_json(Cluster& cluster) {
  Json out = Json::object();
  out.set("metrics", to_json(collect_metrics(cluster)));
  out.set("sharding", shards_to_json(cluster));
  out.set("constraints", analysis_to_json(cluster.constraints()));
  out.set("analysis", config_analysis_to_json(cluster.constraints()));
  out.set("latencies", to_json(cluster.obs().latencies()));
  out.set("trace", to_json(cluster.obs().trace()));
  const TraceAnalysis analysis = analyze(cluster.obs().trace().events());
  out.set("spans", spans_to_json(analysis));
  out.set("critical_path", critical_path_to_json(analysis));
  return out;
}

/// Prometheus text exposition (version 0.0.4) of the same document, served
/// at /metrics.prom.  Counters come from the per-node metrics snapshot,
/// quantiles from the latency registry, and the dedisys_trace_* family from
/// the span analysis of the retained event ring.
[[nodiscard]] inline std::string render_prometheus(Cluster& cluster) {
  std::string out;
  auto num = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return std::string(buf);
  };
  auto line = [&](const std::string& name, const std::string& labels,
                  double v) {
    out += name;
    if (!labels.empty()) out += '{' + labels + '}';
    out += ' ' + num(v) + '\n';
  };
  auto head = [&](const char* name, const char* type, const char* help) {
    out += "# HELP " + std::string(name) + ' ' + help + '\n';
    out += "# TYPE " + std::string(name) + ' ' + type + '\n';
  };

  const ClusterMetrics m = collect_metrics(cluster);
  head("dedisys_sim_time_us", "gauge", "Simulated time elapsed.");
  line("dedisys_sim_time_us", "", static_cast<double>(m.sim_time));
  head("dedisys_threat_identities", "gauge",
       "Stored consistency-threat identities awaiting reconciliation.");
  line("dedisys_threat_identities", "",
       static_cast<double>(m.stored_threat_identities));

  head("dedisys_node_mode", "gauge",
       "1 for the mode each node is currently in.");
  for (const NodeMetrics& n : m.nodes) {
    line("dedisys_node_mode",
         "node=\"" + std::to_string(n.node.value()) + "\",mode=\"" +
             to_string(n.mode) + "\"",
         1.0);
  }
  head("dedisys_node_total", "counter", "Per-node lifetime counters.");
  auto node_counter = [&](const NodeMetrics& n, const char* kind,
                          std::size_t v) {
    line("dedisys_node_total",
         "node=\"" + std::to_string(n.node.value()) + "\",kind=\"" + kind +
             "\"",
         static_cast<double>(v));
  };
  for (const NodeMetrics& n : m.nodes) {
    node_counter(n, "validations", n.validations);
    node_counter(n, "threats_detected", n.threats_detected);
    node_counter(n, "threats_accepted", n.threats_accepted);
    node_counter(n, "threats_rejected", n.threats_rejected);
    node_counter(n, "violations", n.violations);
    node_counter(n, "updates_propagated", n.updates_propagated);
    node_counter(n, "backups_applied", n.backups_applied);
  }

  head("dedisys_faults_total", "counter",
       "Injected faults and their middleware-level consequences.");
  auto fault = [&](const char* kind, std::uint64_t v) {
    line("dedisys_faults_total", std::string("kind=\"") + kind + "\"",
         static_cast<double>(v));
  };
  fault("messages_dropped", m.faults.messages_dropped);
  fault("messages_duplicated", m.faults.messages_duplicated);
  fault("messages_delayed", m.faults.messages_delayed);
  fault("crashes", m.faults.crashes);
  fault("restarts", m.faults.restarts);
  fault("gc_retries", m.faults.gc_retries);
  fault("gc_gave_up", m.faults.gc_gave_up);
  fault("gc_duplicates_suppressed", m.faults.gc_duplicates_suppressed);
  fault("tx_commits", m.faults.tx_commits);
  fault("tx_aborts", m.faults.tx_aborts);
  fault("tx_presumed_aborts", m.faults.tx_presumed_aborts);

  {
    shard::ShardMap& map = cluster.shards();
    shard::FrontDoor& door = cluster.front_door();
    head("dedisys_shard_queue_depth", "gauge",
         "Requests queued at the front door per shard.");
    for (shard::ShardId s = 0; s < map.shard_count(); ++s) {
      line("dedisys_shard_queue_depth", "shard=\"" + std::to_string(s) + "\"",
           static_cast<double>(door.queue_depth(s)));
    }
    head("dedisys_shard_primary", "gauge",
         "Node id of each shard's acting primary (first live replica).");
    for (shard::ShardId s = 0; s < map.shard_count(); ++s) {
      line("dedisys_shard_primary", "shard=\"" + std::to_string(s) + "\"",
           static_cast<double>(door.current_target(s).value()));
    }
    head("dedisys_shard_shed_total", "counter",
         "Requests load-shed at the front door, by shard and reason.");
    for (shard::ShardId s = 0; s < map.shard_count(); ++s) {
      const shard::FrontDoor::ShardStats& st = door.stats(s);
      const std::string prefix = "shard=\"" + std::to_string(s) + "\",reason=";
      line("dedisys_shard_shed_total", prefix + "\"queue_full\"",
           static_cast<double>(st.shed_queue_full));
      line("dedisys_shard_shed_total", prefix + "\"fee_below_required\"",
           static_cast<double>(st.shed_fee));
      line("dedisys_shard_shed_total", prefix + "\"shard_unavailable\"",
           static_cast<double>(st.shed_unavailable));
      line("dedisys_shard_shed_total", prefix + "\"bad_request\"",
           static_cast<double>(st.shed_bad_request));
    }
    head("dedisys_shard_requests_total", "counter",
         "Front-door request lifecycle counters per shard.");
    for (shard::ShardId s = 0; s < map.shard_count(); ++s) {
      const shard::FrontDoor::ShardStats& st = door.stats(s);
      const std::string prefix = "shard=\"" + std::to_string(s) + "\",kind=";
      line("dedisys_shard_requests_total", prefix + "\"submitted\"",
           static_cast<double>(st.submitted));
      line("dedisys_shard_requests_total", prefix + "\"applied\"",
           static_cast<double>(st.applied));
      line("dedisys_shard_requests_total", prefix + "\"committed\"",
           static_cast<double>(st.committed));
      line("dedisys_shard_requests_total", prefix + "\"forwarded\"",
           static_cast<double>(st.forwarded));
      line("dedisys_shard_requests_total", prefix + "\"evicted\"",
           static_cast<double>(st.evicted));
    }
  }

  head("dedisys_latency_us", "summary",
       "Simulated-time latency quantiles per operation.");
  for (const auto& [key, histogram] : cluster.obs().latencies().all()) {
    const LatencySummary s = summarize(histogram);
    const std::string op = "op=\"" + key + "\"";
    line("dedisys_latency_us", op + ",quantile=\"0.5\"", s.p50);
    line("dedisys_latency_us", op + ",quantile=\"0.95\"", s.p95);
    line("dedisys_latency_us", op + ",quantile=\"0.99\"", s.p99);
    line("dedisys_latency_us_count", op, static_cast<double>(s.count));
    line("dedisys_latency_us_sum", op, s.mean * static_cast<double>(s.count));
  }

  const TraceRecorder& trace = cluster.obs().trace();
  head("dedisys_trace_events_recorded_total", "counter",
       "Trace events recorded since startup.");
  line("dedisys_trace_events_recorded_total", "",
       static_cast<double>(trace.recorded()));
  head("dedisys_trace_events_dropped_total", "counter",
       "Trace events overwritten by the ring buffer.");
  line("dedisys_trace_events_dropped_total", "",
       static_cast<double>(trace.dropped()));
  head("dedisys_trace_ring_occupancy", "gauge",
       "Events currently retained (capacity in the limit label).");
  line("dedisys_trace_ring_occupancy",
       "capacity=\"" + std::to_string(trace.capacity()) + "\"",
       static_cast<double>(trace.size()));

  const TraceAnalysis analysis = analyze(trace.events());
  head("dedisys_trace_traces", "gauge", "Distinct traces in the ring.");
  line("dedisys_trace_traces", "", static_cast<double>(analysis.trees.size()));
  head("dedisys_trace_phase_self_us_total", "counter",
       "Busy simulated time attributed per phase across retained traces.");
  std::map<std::string, double> phase_totals;
  for (const TraceSummary& t : analysis.traces) {
    for (const auto& [phase, us] : t.phase_self_us) {
      phase_totals[phase] += static_cast<double>(us);
    }
  }
  for (const auto& [phase, us] : phase_totals) {
    line("dedisys_trace_phase_self_us_total", "phase=\"" + phase + "\"", us);
  }
  return out;
}

}  // namespace dedisys::obs
