// Cluster observability: aggregated metrics snapshots.
//
// Pulls together the statistics the individual services already track
// (database I/O, replication propagation, constraint validations, threat
// counts) into one structure that tests, benchmarks and operators can
// inspect — the runtime-monitoring face of the middleware.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "middleware/cluster.h"

namespace dedisys {

struct NodeMetrics {
  NodeId node;
  SystemMode mode = SystemMode::Healthy;
  std::size_t db_reads = 0;
  std::size_t db_writes = 0;
  std::size_t db_deletes = 0;
  std::size_t updates_propagated = 0;
  std::size_t backups_applied = 0;
  std::size_t history_records = 0;
  std::size_t stale_skipped = 0;
  std::size_t validations = 0;
  std::size_t evaluations_skipped = 0;
  std::size_t evaluations_proven = 0;
  std::size_t reconcile_scheduled = 0;
  std::size_t threats_detected = 0;
  std::size_t threats_accepted = 0;
  std::size_t threats_rejected = 0;
  std::size_t violations = 0;
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  std::size_t memo_stores = 0;
  std::size_t memo_invalidated = 0;
};

/// Cluster-wide fault-tolerance counters: the per-message fault outcomes
/// of the network, the GCS retry/dedup machinery and 2PC recovery.
struct FaultToleranceMetrics {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t gc_retries = 0;
  std::uint64_t gc_gave_up = 0;
  std::uint64_t gc_duplicates_suppressed = 0;
  std::uint64_t gc_reordered = 0;
  std::uint64_t tx_commits = 0;
  std::uint64_t tx_aborts = 0;
  std::uint64_t tx_presumed_aborts = 0;
  std::uint64_t tx_in_doubt = 0;
};

struct ClusterMetrics {
  SimTime sim_time = 0;
  std::size_t stored_threat_identities = 0;
  std::size_t stored_threat_occurrences = 0;
  std::size_t live_objects = 0;
  /// Shared constraint-repository query-cache counters (Section 2.2.1),
  /// reported side by side with the validation memo.
  std::size_t lookup_searches = 0;
  std::size_t lookup_cache_hits = 0;
  std::size_t lookup_cache_misses = 0;
  FaultToleranceMetrics faults;
  std::vector<NodeMetrics> nodes;

  /// Sums a per-node counter across the cluster.
  template <typename Member>
  [[nodiscard]] std::size_t total(Member member) const {
    std::size_t sum = 0;
    for (const NodeMetrics& n : nodes) sum += n.*member;
    return sum;
  }
};

/// Takes a consistent snapshot of the whole cluster's metrics.
inline ClusterMetrics collect_metrics(Cluster& cluster) {
  ClusterMetrics out;
  out.sim_time = cluster.runtime().now();
  out.stored_threat_identities = cluster.threats().identity_count();
  out.stored_threat_occurrences = cluster.threats().total_occurrences();
  out.live_objects = cluster.directory()->size();
  out.lookup_searches = cluster.constraints().search_count();
  out.lookup_cache_hits = cluster.constraints().cache_hit_count();
  out.lookup_cache_misses = cluster.constraints().cache_miss_count();
  {
    const SimNetwork::FaultStats& net = cluster.sim().network.fault_stats();
    const GroupCommunication::Stats& gc = cluster.gc().stats();
    const TransactionManager::Stats& tx = cluster.tx().stats();
    out.faults.messages_dropped = net.messages_dropped;
    out.faults.messages_duplicated = net.messages_duplicated;
    out.faults.messages_delayed = net.messages_delayed;
    out.faults.crashes = net.crashes;
    out.faults.restarts = net.restarts;
    out.faults.gc_retries = gc.retries;
    out.faults.gc_gave_up = gc.gave_up;
    out.faults.gc_duplicates_suppressed = gc.duplicates_suppressed;
    out.faults.gc_reordered = gc.reordered;
    out.faults.tx_commits = tx.commits;
    out.faults.tx_aborts = tx.aborts;
    out.faults.tx_presumed_aborts = tx.presumed_aborts;
    out.faults.tx_in_doubt = cluster.tx().in_doubt_count();
  }
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    DedisysNode& node = cluster.node(i);
    NodeMetrics m;
    m.node = node.id();
    m.mode = node.mode();
    m.db_reads = node.db().read_count();
    m.db_writes = node.db().write_count();
    m.db_deletes = node.db().delete_count();
    m.updates_propagated = node.replication().stats().updates_propagated;
    m.backups_applied = node.replication().stats().backups_applied;
    m.history_records = node.replication().stats().history_records;
    m.stale_skipped = node.replication().stats().stale_skipped;
    m.validations = node.ccmgr().stats().validations;
    m.evaluations_skipped = node.ccmgr().stats().evaluations_skipped;
    m.evaluations_proven = node.ccmgr().stats().evaluations_proven;
    m.reconcile_scheduled = node.ccmgr().stats().reconcile_scheduled;
    m.threats_detected = node.ccmgr().stats().threats_detected;
    m.threats_accepted = node.ccmgr().stats().threats_accepted;
    m.threats_rejected = node.ccmgr().stats().threats_rejected;
    m.violations = node.ccmgr().stats().violations;
    m.memo_hits = node.ccmgr().memo_stats().hits;
    m.memo_misses = node.ccmgr().memo_stats().misses;
    m.memo_stores = node.ccmgr().memo_stats().stores;
    m.memo_invalidated = node.ccmgr().memo_stats().invalidations;
    out.nodes.push_back(m);
  }
  return out;
}

/// Human-readable rendering (examples, operator tooling).
inline std::string render_metrics(const ClusterMetrics& m) {
  std::string out;
  out += "sim time: " + std::to_string(m.sim_time / 1000) + " ms, objects: " +
         std::to_string(m.live_objects) + ", threats: " +
         std::to_string(m.stored_threat_identities) + " (" +
         std::to_string(m.stored_threat_occurrences) + " occurrences)\n";
  for (const NodeMetrics& n : m.nodes) {
    out += "  node " + to_string(n.node) + " [" + to_string(n.mode) + "]" +
           " db r/w/d=" + std::to_string(n.db_reads) + "/" +
           std::to_string(n.db_writes) + "/" + std::to_string(n.db_deletes) +
           " repl prop/apply=" + std::to_string(n.updates_propagated) + "/" +
           std::to_string(n.backups_applied) +
           " ccm val/thr/rej/viol=" + std::to_string(n.validations) + "/" +
           std::to_string(n.threats_accepted) + "/" +
           std::to_string(n.threats_rejected) + "/" +
           std::to_string(n.violations) + "\n";
  }
  return out;
}

}  // namespace dedisys
