#include "middleware/node.h"

#include <algorithm>
#include <utility>

#include "middleware/cluster.h"
#include "util/errors.h"
#include "util/logging.h"

namespace dedisys {

namespace {

/// Server-side interceptor hooking the CCMgr into invocation processing
/// (Section 4.2.4).
class CCMInterceptor final : public Interceptor {
 public:
  CCMInterceptor(ConstraintConsistencyManager& ccm,
                 NodeObjectAccessor& accessor)
      : ccm_(&ccm), accessor_(&accessor) {}

  Value invoke(Invocation& inv, InterceptorChain& chain) override {
    ccm_->before_invocation(inv, *accessor_);
    Value result = chain.proceed(inv);
    inv.result = result;
    ccm_->after_invocation(inv, *accessor_);
    return result;
  }

  [[nodiscard]] std::string name() const override { return "CCMInterceptor"; }

 private:
  ConstraintConsistencyManager* ccm_;
  NodeObjectAccessor* accessor_;
};

/// Server-side interceptor performing update propagation after writes and
/// registering undo actions so aborted transactions restore replicas.
class ReplicationInterceptor final : public Interceptor {
 public:
  explicit ReplicationInterceptor(DedisysNode& node) : node_(&node) {}

  Value invoke(Invocation& inv, InterceptorChain& chain) override {
    ReplicationManager& repl = node_->replication();
    if (repl.replication_enabled() && !inv.nested) {
      // ADAPT component-monitor round (client + server side, Section 5.1).
      Runtime& rt = node_->cluster().runtime();
      rt.charge(rt.cost().adapt_overhead);
    }
    if (inv.mutates && inv.tx.valid() && repl.has_local_replica(inv.target)) {
      EntitySnapshot before = repl.local_replica(inv.target).snapshot();
      DedisysNode* node = node_;
      node_->tx().on_rollback(inv.tx, [node, before] {
        ReplicationManager& r = node->replication();
        if (r.has_local_replica(before.id)) {
          r.local_replica(before.id).restore(before);
          r.propagate_restore(before.id);
        }
      });
    }
    Value result = chain.proceed(inv);
    if (inv.mutates) repl.propagate_update(inv.target, inv.tx);
    return result;
  }

  [[nodiscard]] std::string name() const override {
    return "ReplicationInterceptor";
  }

 private:
  DedisysNode* node_;
};

}  // namespace

// ---------------------------------------------------------------------------
// NodeObjectAccessor
// ---------------------------------------------------------------------------

const Entity& NodeObjectAccessor::read(ObjectId id) {
  ReplicationManager& repl = node_->replication();
  if (repl.has_local_replica(id)) return repl.local_replica(id);
  if (!repl.reachable(id)) {
    throw ObjectUnreachable("object " + to_string(id) +
                            " unreachable from node " + to_string(node_->id()));
  }
  const NodeId remote = repl.execution_node(id, /*is_write=*/false);
  Runtime& rt = node_->cluster().runtime();
  rt.charge_rpc(node_->id(), remote);
  rt.charge_rpc(remote, node_->id());
  DedisysNode* peer = node_->cluster().node_by_id(remote);
  if (peer == nullptr) {
    throw ObjectUnreachable("no kernel for node " + to_string(remote));
  }
  return peer->replication().local_replica(id);
}

Value NodeObjectAccessor::invoke(ObjectId id, const MethodSignature& method,
                                 std::vector<Value> args) {
  return node_->invoke_nested(tx_, id, method, std::move(args));
}

// ---------------------------------------------------------------------------
// DedisysNode
// ---------------------------------------------------------------------------

DedisysNode::DedisysNode(Cluster& cluster, NodeId id,
                         const NodeOptions& options)
    : cluster_(&cluster), id_(id), options_(options), obs_(&cluster.obs()) {
  Runtime& rt = cluster.runtime();
  db_ = std::make_unique<RecordStore>(rt);
  history_ = std::make_unique<ReplicaHistoryStore>(rt);
  tm_ = &cluster.tx();
  gms_ = std::make_unique<GroupMembershipService>(
      rt, id, cluster.weights_ptr(), options.flags.legacy_unidirectional_views);
  gms_->set_observability(obs_);
  gms_->subscribe(this);
  repl_ = std::make_unique<ReplicationManager>(
      id, cluster.classes(), cluster.gc(), *gms_, *db_, *history_,
      cluster.directory(), options.protocol);
  repl_->set_observability(obs_);
  repl_->set_keep_history(options.keep_history);
  repl_->set_replication_enabled(options.with_replication);

  accessor_ = std::make_unique<NodeObjectAccessor>(*this);
  Cluster* cl = cluster_;
  CcmgrWiring wiring;
  wiring.oracle = repl_.get();
  wiring.objects = accessor_.get();
  wiring.default_min = options.default_min_degree;
  wiring.obs = obs_;
  wiring.memo = options.flags.validation_memo;
  wiring.scheduler = options.flags.validation_scheduler;
  if (options.with_replication) {
    ReplicationManager* repl = repl_.get();
    wiring.threat_replicator =
        [repl](const ConsistencyThreat&) { repl->replicate_threat_record(); };
  }
  wiring.object_query =
      [cl](const std::string& class_name) { return cl->objects_of(class_name); };
  ccmgr_ = std::make_unique<ConstraintConsistencyManager>(
      cluster.constraints(), cluster.threats(), *tm_, rt, id,
      std::move(wiring));
  ccmgr_->set_class_ancestry([cl](const std::string& class_name) {
    return cl->classes().ancestry(class_name);
  });

  if (options.with_ccm) {
    server_chain_.add(std::make_shared<CCMInterceptor>(*ccmgr_, *accessor_));
  }
  server_chain_.add(std::make_shared<ReplicationInterceptor>(*this));
}

void DedisysNode::change_mode(SystemMode m) {
  if (m == mode_) return;
  const SystemMode previous = mode_;
  mode_ = m;
  if (obs::on(obs_)) {
    obs_->event(cluster_->runtime().now(), obs::TraceEventKind::ModeTransition,
                id_, {}, {}, to_string(m), "from " + to_string(previous));
  }
}

void DedisysNode::on_view_installed(const View& installed,
                                    const View& /*previous*/) {
  if (!options_.with_replication) return;  // independent node: always healthy
  if (!installed.complete) {
    change_mode(SystemMode::Degraded);
    repl_->set_degraded(true);
    ccmgr_->set_degraded(true, installed.weight_fraction);
  } else {
    if (mode_ == SystemMode::Degraded) {
      change_mode(SystemMode::Reconciling);
      if (options_.reconciliation_policy !=
          ReconciliationBusinessPolicy::Proceed) {
        threatened_cache_ = ccmgr_->threatened_objects();
        if (options_.reconciliation_policy ==
            ReconciliationBusinessPolicy::TreatAsDegraded) {
          ccmgr_->set_forced_stale(threatened_cache_);
        }
      }
    }
    repl_->set_degraded(false);
    ccmgr_->set_degraded(false, 1.0);
  }
}

bool DedisysNode::apply_reconciliation_policy(ObjectId target) {
  if (mode_ != SystemMode::Reconciling ||
      options_.reconciliation_policy ==
          ReconciliationBusinessPolicy::Proceed ||
      threatened_cache_.count(target) == 0) {
    return false;
  }
  if (options_.reconciliation_policy ==
      ReconciliationBusinessPolicy::BlockThreatened) {
    throw ReconciliationBlocked("object " + to_string(target) +
                                " is being reconciled");
  }
  return true;  // TreatAsDegraded
}

// ---------------------------------------------------------------------------
// Client API
// ---------------------------------------------------------------------------

ObjectId DedisysNode::create(TxId tx, const std::string& class_name,
                             const std::string& application,
                             std::optional<std::vector<NodeId>> replica_nodes) {
  Runtime& rt = cluster_->runtime();
  Runtime::Section section(rt);
  // Root span: the creation multicast to the replicas attaches to it.
  obs::SpanGuard span_guard(obs_, rt, "create " + class_name, id_, {}, tx);
  const SimTime start = rt.now();
  rt.charge(rt.cost().invocation_overhead);
  const ObjectId id =
      repl_->create(class_name, tx, std::move(replica_nodes), application);
  db_->put("entities", to_string(id), repl_->local_replica(id).attributes());
  if (obs::on(obs_)) {
    obs_->latency("create", rt.now() - start);
  }
  notify_created(id, class_name);
  if (tx.valid()) {
    tm_->lock(tx, id);
    ReplicationManager* repl = repl_.get();
    tm_->on_rollback(tx, [repl, id] {
      if (repl->directory().contains(id)) repl->destroy(id, TxId{});
    });
  }
  return id;
}

void DedisysNode::destroy(TxId tx, ObjectId id) {
  Runtime& rt = cluster_->runtime();
  Runtime::Section section(rt);
  obs::SpanGuard span_guard(obs_, rt, "destroy", id_, id, tx);
  const SimTime start = rt.now();
  rt.charge(rt.cost().invocation_overhead);
  if (tx.valid()) tm_->lock(tx, id);
  db_->erase("entities", to_string(id));
  repl_->destroy(id, tx);
  // A later create() may reuse this id for a fresh entity whose write stamp
  // restarts at zero; drop any cached outcomes keyed on the dead object.
  ccmgr_->invalidate_memo_object(id);
  if (obs::on(obs_)) {
    obs_->latency("destroy", rt.now() - start);
  }
  notify_deleted(id);
}

const MethodDescriptor& DedisysNode::resolve_method(
    const std::string& class_name, const std::string& method_name,
    std::size_t arity) const {
  const ClassDescriptor& cls = cluster_->classes().get(class_name);
  for (const auto& [key, md] : cls.methods()) {
    if (md.signature.name == method_name &&
        md.signature.param_types.size() == arity) {
      return md;
    }
  }
  throw ConfigError("no method " + method_name + "/" + std::to_string(arity) +
                    " on class " + class_name);
}

Value DedisysNode::invoke(TxId tx, ObjectId target,
                          const std::string& method_name,
                          std::vector<Value> args) {
  const ObjectDirectory::Entry& entry = cluster_->directory()->get(target);
  const MethodDescriptor& md =
      resolve_method(entry.class_name, method_name, args.size());

  Invocation inv;
  inv.target = target;
  inv.target_class = entry.class_name;
  inv.method = md.signature;
  inv.args = std::move(args);
  inv.tx = tx;
  inv.client_node = id_;
  inv.is_write = md.is_write();
  inv.mutates = md.mutates();
  if (!entry.application.empty()) {
    inv.context["application"] = entry.application;
  }

  Runtime& rt = cluster_->runtime();
  Runtime::Section section(rt);
  const SimTime invoke_start = rt.now();
  const std::string span = entry.class_name + "::" + method_name;
  // The invocation's causal root span: every event emitted while the call
  // is on the stack — validations, 2PC, GCS legs, backup applies — joins
  // this trace (a top-level call opens a fresh trace; a call made from a
  // method body nests under the ambient span).
  obs::SpanGuard span_guard(obs_, rt, span, id_, target, tx);
  if (obs::on(obs_)) {
    obs_->event(invoke_start, obs::TraceEventKind::InvocationStart, id_,
                target, tx, span, inv.is_write ? "write" : "read");
  }

  NodeId exec = repl_->execution_node(target, inv.is_write);
  if (client_monitor_ != nullptr && !inv.is_write) {
    // ADAPT client-side component monitor: reads may be redirected to any
    // reachable replica (Section 4.3).
    std::vector<NodeId> reachable;
    for (NodeId r : cluster_->directory()->get(target).replicas) {
      if (rt.reachable(id_, r)) reachable.push_back(r);
    }
    const NodeId redirected = client_monitor_->redirect(inv, exec, reachable);
    if (std::find(reachable.begin(), reachable.end(), redirected) !=
        reachable.end()) {
      exec = redirected;
    }
  }
  inv.server_node = exec;
  DedisysNode* server = exec == id_ ? this : cluster_->node_by_id(exec);
  if (server == nullptr) {
    throw ObjectUnreachable("no kernel for node " + to_string(exec));
  }

  const bool treat_degraded = server->apply_reconciliation_policy(target);

  if (exec != id_) rt.charge_rpc(id_, exec);
  rt.charge(rt.cost().invocation_overhead);
  Value result;
  try {
    if (treat_degraded) {
      // Section 3.3: treat the operation as if the partition were still in
      // place — validations run with degraded semantics and may introduce
      // new threats.
      server->ccmgr().set_degraded(
          true, server->gms().current_view().weight_fraction);
      try {
        result = server->execute_server(inv);
      } catch (...) {
        server->ccmgr().set_degraded(false, 1.0);
        throw;
      }
      server->ccmgr().set_degraded(false, 1.0);
    } else {
      result = server->execute_server(inv);
    }
  } catch (...) {
    if (obs::on(obs_)) {
      obs_->event(rt.now(), obs::TraceEventKind::InvocationEnd,
                  id_, target, tx, span, "failed");
    }
    throw;
  }
  if (exec != id_) rt.charge_rpc(exec, id_);
  if (obs::on(obs_)) {
    const SimTime end = rt.now();
    obs_->event(end, obs::TraceEventKind::InvocationEnd, id_, target, tx,
                span);
    obs_->latency(inv.is_write ? "invoke.write" : "invoke.read",
                  end - invoke_start);
  }
  return result;
}

Value DedisysNode::invoke_nested(TxId tx, ObjectId target,
                                 const MethodSignature& method,
                                 std::vector<Value> args) {
  const ObjectDirectory::Entry& entry = cluster_->directory()->get(target);
  const MethodDescriptor& md =
      cluster_->classes().get(entry.class_name).method(method);

  Invocation inv;
  inv.target = target;
  inv.target_class = entry.class_name;
  inv.method = md.signature;
  inv.args = std::move(args);
  inv.tx = tx;
  inv.client_node = id_;
  inv.is_write = md.is_write();
  inv.mutates = md.mutates();
  inv.nested = true;
  if (!entry.application.empty()) {
    inv.context["application"] = entry.application;
  }

  Runtime& rt = cluster_->runtime();
  Runtime::Section section(rt);
  obs::SpanGuard span_guard(obs_, rt, entry.class_name + "::" + method.name,
                            id_, target, tx);

  const NodeId exec = repl_->execution_node(target, inv.is_write);
  inv.server_node = exec;
  DedisysNode* server = exec == id_ ? this : cluster_->node_by_id(exec);
  if (server == nullptr) {
    throw ObjectUnreachable("no kernel for node " + to_string(exec));
  }

  if (exec != id_) rt.charge_rpc(id_, exec);
  // Internal calls are intercepted through the AOP framework rather than
  // the full container proxy (Section 4.2.4) — much cheaper.
  rt.charge(rt.cost().aop_interception);
  Value result = server->execute_server(inv);
  if (exec != id_) rt.charge_rpc(exec, id_);
  return result;
}

Value DedisysNode::execute_server(Invocation& inv) {
  for (auto& m : server_monitors_) m->before_invocation(inv);
  Value result = server_chain_.execute(
      inv, [this](Invocation& i) { return terminal_dispatch(i); });
  for (auto& m : server_monitors_) m->after_invocation(inv);
  return result;
}

Value DedisysNode::terminal_dispatch(Invocation& inv) {
  const ObjectDirectory::Entry& entry = cluster_->directory()->get(inv.target);
  const MethodDescriptor& md =
      cluster_->classes().get(entry.class_name).method(inv.method);
  Entity& entity = repl_->local_replica(inv.target);

  if (inv.is_write && inv.tx.valid()) tm_->lock(inv.tx, inv.target);

  const TxId previous_tx = accessor_->current_tx();
  accessor_->set_current_tx(inv.tx);
  MethodContext mctx{*accessor_, inv.tx, id_,
                     obs::on(obs_) ? obs_->current() : obs::TraceContext{}};
  Value result = md.body ? md.body(entity, mctx, inv.args) : Value{};
  accessor_->set_current_tx(previous_tx);

  if (inv.mutates) {
    // Container-managed persistence: flush the dirty entity state.
    db_->put("entities", to_string(inv.target), entity.attributes());
    entity.touch(cluster_->runtime().now());
  }
  inv.result = result;
  return result;
}

}  // namespace dedisys
