// Administration, deployment and runtime configuration (Fig. 4.1).
//
// The paper's architecture has a dedicated administrator role above the
// middleware: "responsible for proper administration, deployment, and
// runtime configuration of the middleware as well as the application".
// This facade bundles those tasks: deploying constraint descriptors,
// runtime constraint management with re-validation, inspecting stored
// threats, and snapshotting/restoring durable state.
#pragma once

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "constraints/config.h"
#include "constraints/config_writer.h"
#include "middleware/cluster.h"
#include "middleware/metrics.h"
#include "middleware/obs_export.h"
#include "persist/snapshot.h"

namespace dedisys {

/// Value-typed snapshot of all durable cluster state: one serialized
/// record-store image per node plus the shared threat database.  Produced
/// by AdminConsole::take_snapshot and consumed by AdminConsole::restore —
/// the crash-restart recovery path of the fault engine, and the
/// administrator's backup format.
struct ClusterSnapshot {
  std::vector<std::string> node_states;  ///< node index -> serialized store
  std::string threat_state;              ///< serialized threat database
};

class AdminConsole {
 public:
  explicit AdminConsole(Cluster& cluster) : cluster_(&cluster) {}

  // -- deployment ------------------------------------------------------------

  /// Deploys a constraint descriptor (Listing 4.1) into the default
  /// repository and runs the static analyzer over the new registrations
  /// (read-sets, triviality, locality — PR 3; interval verdicts and
  /// cross-constraint analysis — PR 8); returns the number of constraints
  /// registered.
  ///
  /// Registration-time rejection (PR 8): a newly deployed invariant the
  /// abstract interpreter proves unsatisfiable, or one whose satisfaction
  /// box is disjoint from an already-deployed invariant of the same
  /// context class, aborts the deployment — every constraint this call
  /// added is removed again and a ConfigError naming the offenders is
  /// thrown.  Constraints deployed before this call are never touched.
  std::size_t deploy_constraints(const std::string& xml,
                                 const ConstraintFactory& factory = {}) {
    ConstraintRepository& repo = cluster_->constraints();
    std::set<std::string> before;
    for (const ConstraintRegistration& reg : repo.registrations()) {
      before.insert(reg.constraint->name());
    }
    const std::size_t loaded = load_constraints(xml, factory, repo);
    analysis::analyze_repository(repo, &cluster_->classes());

    auto is_new = [&](const std::string& name) {
      return before.count(name) == 0;
    };
    auto is_invariant = [](ConstraintType t) {
      return t == ConstraintType::HardInvariant ||
             t == ConstraintType::SoftInvariant ||
             t == ConstraintType::AsyncInvariant;
    };
    std::string reject;
    for (const ConstraintRegistration& reg : repo.registrations()) {
      const std::string& name = reg.constraint->name();
      if (!is_new(name) || reg.analysis == nullptr || reg.analysis->opaque ||
          !is_invariant(reg.constraint->type())) {
        continue;
      }
      if (reg.analysis->verdict == analysis::Verdict::Unsatisfiable) {
        reject = "deployment rejected: invariant '" + name +
                 "' is statically unsatisfiable";
        break;
      }
    }
    if (reject.empty() && repo.config_analysis() != nullptr) {
      for (const auto& c : repo.config_analysis()->conflicts) {
        if (!is_new(c.first) && !is_new(c.second)) continue;
        reject = "deployment rejected: invariants '" + c.first + "' and '" +
                 c.second + "' conflict — disjoint satisfaction sets on "
                 "attribute '" + c.attribute + "'";
        break;
      }
    }
    if (!reject.empty()) {
      std::vector<std::string> added;
      for (const ConstraintRegistration& reg : repo.registrations()) {
        if (is_new(reg.constraint->name())) {
          added.push_back(reg.constraint->name());
        }
      }
      for (const std::string& name : added) repo.remove(name);
      // Restore the configuration analysis over the surviving set.
      analysis::analyze_repository(repo, &cluster_->classes());
      throw ConfigError(reject);
    }
    return loaded;
  }

  /// Static-analysis report of one deployed constraint (null until the
  /// analyzer ran over its registration).
  [[nodiscard]] const analysis::AnalysisReport* analysis_report(
      const std::string& name) const {
    const ConstraintRegistration* reg =
        cluster_->constraints().registration(name);
    return reg == nullptr ? nullptr : reg->analysis.get();
  }

  /// Re-runs the analyzer over registrations added outside of
  /// deploy_constraints; returns the number newly analyzed.
  std::size_t analyze_constraints() {
    return analysis::analyze_repository(cluster_->constraints(),
                                        &cluster_->classes());
  }

  /// Serializes the currently deployed default repository.
  [[nodiscard]] std::string export_constraints() const {
    return write_constraints_xml(cluster_->constraints());
  }

  // -- runtime configuration ----------------------------------------------------

  /// Disables a constraint at runtime (relaxing consistency, Section 3.3).
  void disable_constraint(const std::string& name) {
    cluster_->constraints().set_enabled(name, false);
  }

  /// Re-enables a constraint and re-validates it for every context object
  /// of its context class (required by Section 3.3).  Returns the objects
  /// found violating — the administrator's clean-up worklist.
  std::vector<ObjectId> enable_constraint(const std::string& name,
                                          std::size_t via_node = 0) {
    cluster_->constraints().set_enabled(name, true);
    const ConstraintRegistration* reg =
        cluster_->constraints().registration(name);
    if (reg == nullptr) throw ConfigError("unknown constraint: " + name);
    std::vector<ObjectId> context_objects;
    if (!reg->context_class.empty()) {
      context_objects = cluster_->objects_of(reg->context_class);
    }
    return cluster_->node(via_node).ccmgr().revalidate_for_objects(
        name, context_objects);
  }

  // -- inspection ---------------------------------------------------------------

  struct ThreatSummary {
    std::string identity;
    std::string constraint;
    SatisfactionDegree degree;
    std::size_t occurrences;
    std::size_t affected_objects;
  };

  /// Lists stored consistency threats (the administrator's view of the
  /// degradation damage awaiting reconciliation).
  [[nodiscard]] std::vector<ThreatSummary> list_threats() {
    std::vector<ThreatSummary> out;
    for (const StoredThreat& st : cluster_->threats().load_all()) {
      out.push_back(ThreatSummary{st.threat.identity(),
                                  st.threat.constraint_name, st.threat.degree,
                                  st.occurrences,
                                  st.threat.affected_objects.size()});
    }
    return out;
  }

  void print_threats(std::ostream& os) {
    for (const ThreatSummary& t : list_threats()) {
      os << t.identity << " degree=" << to_string(t.degree)
         << " occurrences=" << t.occurrences
         << " affected=" << t.affected_objects << '\n';
    }
  }

  [[nodiscard]] ClusterMetrics metrics() { return collect_metrics(*cluster_); }

  // -- observability ----------------------------------------------------------

  /// Full observability export (metrics + latency summaries + trace) as a
  /// JSON document; pretty-printed when `indent` >= 0.
  [[nodiscard]] std::string metrics_json(int indent = 2) {
    return obs::export_cluster_json(*cluster_).dump(indent);
  }

  /// Human-readable rendering of the recorded trace, in SimTime order.
  [[nodiscard]] std::string timeline() {
    return obs::render_timeline(cluster_->obs().trace());
  }

  void print_timeline(std::ostream& os) { os << timeline(); }

  // -- durable state ---------------------------------------------------------------

  /// Captures every node's durable store plus the shared threat database
  /// as one value (the administrator's backup; also the state a restarted
  /// node recovers from).
  [[nodiscard]] ClusterSnapshot take_snapshot() {
    ClusterSnapshot snap;
    snap.node_states.reserve(cluster_->size());
    for (std::size_t i = 0; i < cluster_->size(); ++i) {
      std::ostringstream os;
      save_snapshot(cluster_->node(i).db(), os);
      snap.node_states.push_back(os.str());
    }
    std::ostringstream os;
    save_snapshot(cluster_->threat_db(), os);
    snap.threat_state = os.str();
    return snap;
  }

  /// Restores a snapshot taken with take_snapshot: every node's durable
  /// store, the threat database, and the threat index rebuilt over it.
  void restore(const ClusterSnapshot& snap) {
    const std::size_t count =
        std::min(snap.node_states.size(), cluster_->size());
    for (std::size_t i = 0; i < count; ++i) {
      std::istringstream is(snap.node_states[i]);
      load_snapshot(cluster_->node(i).db(), is);
    }
    std::istringstream is(snap.threat_state);
    load_snapshot(cluster_->threat_db(), is);
    cluster_->threats().rebuild_index();
  }

 private:
  Cluster* cluster_;
};

}  // namespace dedisys
