#include "middleware/cluster.h"

#include <algorithm>
#include <map>
#include <optional>
#include <type_traits>
#include <utility>
#include <variant>

#include "runtime/sim_runtime.h"
#include "runtime/threaded_runtime.h"
#include "sim/fault_engine.h"
#include "util/errors.h"

namespace dedisys {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  // The trace hub's ambient span stack is single-threaded by design, so
  // observability stays off on the threaded backend regardless of flags.
  if (config_.backend == RuntimeBackend::Sim && config_.flags.observability) {
    obs_.enable(config_.flags.trace_capacity);
  }
  network_ = std::make_unique<SimNetwork>(clock_, config_.cost);
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    network_->add_node(NodeId{i});
  }
  events_ = std::make_unique<EventQueue>(clock_);
  if (config_.backend == RuntimeBackend::Threaded) {
    runtime_ = std::make_unique<ThreadedRuntime>(network_->nodes(),
                                                 config_.cost);
  } else {
    runtime_ = std::make_unique<SimRuntime>(clock_, *network_, *events_);
  }
  tm_ = std::make_unique<TransactionManager>(*runtime_);
  tm_->set_observability(&obs_);
  gc_ = std::make_unique<GroupCommunication>(*runtime_);
  gc_->set_observability(&obs_);
  weights_ = std::make_shared<NodeWeights>();
  directory_ = std::make_shared<ObjectDirectory>();
  threat_db_ = std::make_unique<RecordStore>(*runtime_);
  threat_store_ = std::make_unique<ThreatStore>(*threat_db_);
  threat_store_->set_policy(config_.threat_policy);

  NodeOptions options;
  options.protocol = config_.protocol;
  options.with_replication = config_.with_replication;
  options.with_ccm = config_.with_ccm;
  options.keep_history = config_.keep_history;
  options.default_min_degree = config_.default_min_degree;
  options.reconciliation_policy = config_.reconciliation_policy;
  options.flags = config_.flags;
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    nodes_.push_back(std::make_unique<DedisysNode>(*this, NodeId{i}, options));
  }

  std::vector<ReplicationManager*> managers;
  managers.reserve(nodes_.size());
  for (auto& n : nodes_) managers.push_back(&n->replication());
  for (auto& n : nodes_) n->replication().connect_peers(managers);

  shard_map_ = std::make_unique<shard::ShardMap>(
      network_->nodes(), config_.shards == 0 ? 1 : config_.shards);
  front_door_ = std::make_unique<shard::FrontDoor>(*this, *shard_map_,
                                                   config_.shard_policy);
}

Cluster::~Cluster() = default;

ConstraintRepository& Cluster::application_constraints(
    const std::string& name) {
  auto it = app_repositories_.find(name);
  if (it == app_repositories_.end()) {
    it = app_repositories_
             .emplace(name, std::make_unique<ConstraintRepository>())
             .first;
    for (auto& n : nodes_) {
      n->ccmgr().register_application(name, it->second.get());
    }
  }
  return *it->second;
}

std::vector<ObjectId> Cluster::objects_of(const std::string& class_name) const {
  std::vector<ObjectId> out;
  for (ObjectId id : directory_->all_objects()) {
    if (directory_->get(id).class_name == class_name) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

DedisysNode* Cluster::node_by_id(NodeId id) {
  for (auto& n : nodes_) {
    if (n->id() == id) return n.get();
  }
  return nullptr;
}

void Cluster::inject(const fault::Op& op) {
  std::visit(
      [this](const auto& o) {
        using T = std::decay_t<decltype(o)>;
        if constexpr (std::is_same_v<T, fault::Partition>) {
          split_ids(o.groups);
        } else if constexpr (std::is_same_v<T, fault::Heal>) {
          do_heal();
        } else if constexpr (std::is_same_v<T, fault::Crash>) {
          if (DedisysNode* n = node_by_id(o.node)) {
            do_crash(*n);
          } else {
            network_->apply(o);
          }
        } else if constexpr (std::is_same_v<T, fault::Restart>) {
          if (DedisysNode* n = node_by_id(o.node)) {
            do_restart(*n);
          } else {
            network_->apply(o);
          }
        } else {
          // Link faults and gray ops act on the network substrate alone.
          network_->apply(o);
        }
      },
      op);
}

std::size_t Cluster::inject(const fault::Restart& op) {
  if (DedisysNode* n = node_by_id(op.node)) return do_restart(*n);
  network_->apply(op);
  return 0;
}

void Cluster::split(const std::vector<std::vector<std::size_t>>& groups) {
  std::vector<std::vector<NodeId>> node_groups;
  node_groups.reserve(groups.size());
  for (const auto& g : groups) {
    std::vector<NodeId> ids;
    ids.reserve(g.size());
    for (std::size_t idx : g) ids.push_back(node(idx).id());
    node_groups.push_back(std::move(ids));
  }
  split_ids(std::move(node_groups));
}

void Cluster::split_ids(std::vector<std::vector<NodeId>> node_groups) {
  last_partition_groups_ = node_groups;
  if (obs_.enabled()) {
    std::string detail;
    for (const auto& g : node_groups) {
      detail += detail.empty() ? "{" : " {";
      for (std::size_t i = 0; i < g.size(); ++i) {
        if (i > 0) detail += ',';
        detail += to_string(g[i]);
      }
      detail += '}';
    }
    obs_.event(clock_.now(), obs::TraceEventKind::NetworkSplit, {}, {}, {},
               "partition", detail);
  }
  network_->apply(fault::Partition{std::move(node_groups)});
}

void Cluster::do_heal() {
  if (obs_.enabled()) {
    obs_.event(clock_.now(), obs::TraceEventKind::NetworkHeal, {}, {}, {},
               "heal");
  }
  network_->apply(fault::Heal{});
}

void Cluster::heal() { do_heal(); }

void Cluster::do_crash(DedisysNode& n) {
  // The pause-crash wipes the node's volatile state (in-memory replicas);
  // the durable record store survives for restart recovery.
  n.replication().drop_volatile();
  network_->apply(fault::Crash{n.id()});
}

void Cluster::crash_node(std::size_t index) { do_crash(node(index)); }

std::size_t Cluster::restart_node(std::size_t index) {
  return do_restart(node(index));
}

std::size_t Cluster::do_restart(DedisysNode& n) {
  network_->apply(fault::Restart{n.id()});

  // Coordinator recovery first: any transaction left in doubt by a crash
  // between prepare and commit is presumed aborted, releasing its locks
  // and prepared resources before new work arrives (Section 1.1).
  const std::size_t presumed = tm_->recover_in_doubt();

  // Replica rebuild, in object-id order for determinism: prefer the
  // freshest reachable peer copy; fall back to this node's own durable
  // entity table (last flushed attribute state).
  std::size_t rebuilt = 0;
  std::vector<ObjectId> ids = directory_->all_objects();
  std::sort(ids.begin(), ids.end());
  for (ObjectId id : ids) {
    const ObjectDirectory::Entry& entry = directory_->get(id);
    if (std::find(entry.replicas.begin(), entry.replicas.end(), n.id()) ==
        entry.replicas.end()) {
      continue;
    }
    if (n.replication().has_local_replica(id)) continue;
    std::optional<EntitySnapshot> best;
    for (NodeId peer : runtime_->membership_set(n.id())) {
      if (peer == n.id()) continue;
      DedisysNode* p = node_by_id(peer);
      if (p == nullptr || !p->replication().has_local_replica(id)) continue;
      // State transfer: extract and ship the peer's copy.
      runtime_->charge(config_.cost.state_extraction + config_.cost.rpc_latency);
      const Entity& e = p->replication().local_replica(id);
      if (!best || e.version() > best->version) best = e.snapshot();
    }
    if (!best) {
      auto record = n.db().get("entities", to_string(id));
      if (record) {
        EntitySnapshot snap;
        snap.id = id;
        snap.class_name = entry.class_name;
        snap.attributes = *record;
        auto version = n.db().get("replica_versions", to_string(id));
        if (version) {
          auto it = version->find("version");
          if (it != version->end()) {
            snap.version = static_cast<std::uint64_t>(as_int(it->second));
          }
        }
        best = std::move(snap);
      }
    }
    if (best) {
      runtime_->charge(config_.cost.backup_apply);
      n.replication().adopt_replica(*best);
      ++rebuilt;
    }
  }
  if (obs_.enabled()) {
    obs_.event(runtime_->now(), obs::TraceEventKind::NodeRestarted, n.id(), {},
               {}, "restart",
               "replicas=" + std::to_string(rebuilt) +
                   " presumed_aborts=" + std::to_string(presumed));
  }
  return rebuilt;
}

void Cluster::adopt_fault_engine(FaultEngine& engine) {
  engine.set_observability(&obs_);
  engine.set_crash_handler([this](NodeId id) {
    if (DedisysNode* n = node_by_id(id)) {
      do_crash(*n);
    } else {
      network_->apply(fault::Crash{id});
    }
  });
  engine.set_restart_handler([this](NodeId id) {
    if (DedisysNode* n = node_by_id(id)) {
      do_restart(*n);
    } else {
      network_->apply(fault::Restart{id});
    }
  });
  engine.set_partition_handler(
      [this](const std::vector<std::vector<NodeId>>& groups) {
        split_ids(groups);
      });
  engine.set_heal_handler([this] { do_heal(); });
}

Cluster::ReconciliationReport Cluster::reconcile(
    ReplicaConsistencyHandler* replica_handler,
    ConstraintReconciliationHandler* constraint_handler,
    std::size_t coordinator) {
  ReconciliationReport report;
  Runtime::Section section(*runtime_);
  const SimTime reconcile_start = runtime_->now();
  // Root span for the merge protocol: replica reconciliation, threat
  // re-evaluation (whose per-threat spans re-parent to their originating
  // traces) and the mode flip back to Healthy.
  obs::SpanGuard span_guard(&obs_, *runtime_, "reconcile",
                            node(coordinator).id());
  if (obs_.enabled()) {
    obs_.event(reconcile_start, obs::TraceEventKind::ReconcileStart,
               node(coordinator).id(), {}, {}, "reconcile",
               "threat identities=" +
                   std::to_string(threat_store_->identity_count()));
  }

  std::vector<ReplicationManager*> managers;
  managers.reserve(nodes_.size());
  for (auto& n : nodes_) managers.push_back(&n->replication());
  ReplicaReconciler reconciler(managers, *runtime_);

  // Without explicitly recorded link-failure groups (e.g. recovery from a
  // node crash), derive the former partitions from the view memberships
  // the replication managers recorded while degraded: nodes that shared a
  // degraded-era view formed one partition.
  std::vector<std::vector<NodeId>> former = last_partition_groups_;
  if (former.empty()) {
    std::map<std::vector<NodeId>, std::vector<NodeId>> by_membership;
    for (auto& n : nodes_) {
      by_membership[n->replication().degraded_view_members()].push_back(
          n->id());
    }
    for (auto& [membership, group] : by_membership) former.push_back(group);
  }

  // Step 1: replica reconciliation — propagate missed updates between the
  // former partitions and resolve write-write conflicts (Fig. 4.6).
  // Missed updates include the consistency-threat records themselves
  // (Section 5.2); replica reconciliation cannot benefit from identifying
  // identical threats and pays per stored row.
  SimTime t0 = runtime_->now();
  const std::size_t identities = threat_store_->identity_count();
  const std::size_t occurrences = threat_store_->total_occurrences();
  std::size_t threat_rows = identities * 3;
  if (threat_store_->policy() == ThreatHistoryPolicy::FullHistory &&
      occurrences > identities) {
    threat_rows += (occurrences - identities) * 2;
  }
  // Per row: read, transfer, conflict-check against the local threat
  // tables and durably apply on the joining side.
  runtime_->charge(static_cast<SimDuration>(threat_rows) *
                   (config_.cost.db_read + config_.cost.rpc_latency +
                    config_.cost.state_extraction + config_.cost.db_write +
                    config_.cost.backup_apply));
  report.replica = reconciler.reconcile(former, replica_handler);
  report.replica_time = runtime_->now() - t0;

  // Step 2: constraint reconciliation — re-evaluate accepted threats.
  ConstraintConsistencyManager& ccm = node(coordinator).ccmgr();
  auto conflict_query = [&reconciler](ObjectId id) {
    return reconciler.had_conflict(id);
  };
  auto try_rollback = [this, &reconciler,
                       coordinator](const ConsistencyThreat& threat) {
    const ConstraintRegistration* reg =
        constraint_repository_.registration(threat.constraint_name);
    if (reg == nullptr) return false;
    Constraint* constraint = reg->constraint.get();
    DedisysNode& n = node(coordinator);
    auto is_consistent = [&]() {
      ConstraintValidationContext ctx(n.accessor(), n.id(), TxId{});
      ctx.set_context_object(threat.context_object);
      try {
        return constraint->validate(ctx);
      } catch (const DedisysError&) {
        return false;
      }
    };
    return reconciler.try_rollback_search(threat.affected_objects,
                                          is_consistent);
  };

  t0 = runtime_->now();
  report.constraints =
      ccm.reconcile(constraint_handler, conflict_query, try_rollback);
  report.constraint_time = runtime_->now() - t0;

  reconciler.finish();
  for (auto& n : nodes_) n->set_mode(SystemMode::Healthy);
  last_partition_groups_.clear();
  if (obs_.enabled()) {
    obs_.latency("reconcile.replica", report.replica_time);
    obs_.latency("reconcile.constraints", report.constraint_time);
    obs_.latency("reconcile.total", runtime_->now() - reconcile_start);
    obs_.event(runtime_->now(), obs::TraceEventKind::ReconcileEnd,
               node(coordinator).id(), {}, {}, "reconcile",
               "reevaluated=" + std::to_string(report.constraints.reevaluated) +
                   " removed=" +
                   std::to_string(report.constraints.removed_satisfied) +
                   " violations=" +
                   std::to_string(report.constraints.violations) +
                   " conflicts=" + std::to_string(report.replica.conflicts));
  }
  return report;
}

}  // namespace dedisys
