// DeDiSys cluster: execution runtime + node kernels + the reconciliation
// driver (Fig. 4.6).  The backend is pluggable (src/runtime): deterministic
// simulation by default, or wall-clock threads via ClusterConfig::backend.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "constraints/ccmgr.h"
#include "constraints/repository.h"
#include "constraints/threats.h"
#include "gcs/group_comm.h"
#include "gcs/membership.h"
#include "middleware/node.h"
#include "obs/observability.h"
#include "persist/record_store.h"
#include "replication/protocol.h"
#include "replication/reconciler.h"
#include "runtime/options.h"
#include "runtime/runtime.h"
#include "shard/front_door.h"
#include "shard/policy.h"
#include "shard/shard_map.h"
#include "sim/event_queue.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "tx/tx_manager.h"
#include "util/sim_clock.h"

namespace dedisys {

class FaultEngine;

struct ClusterConfig {
  std::size_t nodes = 3;
  CostModel cost{};
  ReplicationProtocol protocol = ReplicationProtocol::PrimaryPartition;
  /// false = the "No DeDiSys" baseline (independent nodes, no replication).
  bool with_replication = true;
  /// false = no constraint consistency management service.
  bool with_ccm = true;
  /// Replica history capture during degraded mode (Section 5.5.1).
  bool keep_history = true;
  ThreatHistoryPolicy threat_policy = ThreatHistoryPolicy::IdenticalOnce;
  /// Application-wide fallback for static negotiation.
  SatisfactionDegree default_min_degree = SatisfactionDegree::Satisfied;
  /// Business operations on threatened objects during reconciliation.
  ReconciliationBusinessPolicy reconciliation_policy =
      ReconciliationBusinessPolicy::Proceed;
  /// Which execution backend the cluster runs on: deterministic simulation
  /// (default — every seed-pinned suite), or wall-clock worker threads
  /// (benchmarks on real hardware; no fault injection, no tracing).
  RuntimeBackend backend = RuntimeBackend::Sim;
  /// Feature toggles shared with NodeOptions and ChaosOptions (see
  /// runtime/options.h for per-flag semantics).  Observability can also be
  /// enabled later via cluster.obs().enable(); on the threaded backend it
  /// is forced off (the trace hub's span stack is single-threaded).
  FeatureFlags flags;
  /// Replica groups the entity space is partitioned across (1 = the
  /// classic fully-replicated cluster; must not exceed `nodes`).  Each
  /// shard runs the GMS/replication/P4/CCMgr stack over its own node
  /// group; cross-shard transactions ride the cluster-wide 2PC.
  std::size_t shards = 1;
  /// Admission-control tuning of the sharded front door (queue bounds,
  /// batching, TxQ-style fee escalation); see shard/policy.h.
  shard::ShardPolicy shard_policy;
};

/// Narrow view of the deterministic-simulation substrate, for fault
/// injection and chaos/script drivers.  Replaces the deprecated
/// Cluster::clock()/network()/events() accessors so the public cluster
/// surface no longer leaks backend internals; meaningless on the threaded
/// backend (see docs/fault_injection.md).
struct SimHandles {
  SimClock& clock;
  SimNetwork& network;
  EventQueue& events;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // -- execution runtime --------------------------------------------------------

  /// The pluggable runtime every protocol component runs against.
  Runtime& runtime() { return *runtime_; }

  // -- sim-only substrate (fault injection, chaos/script drivers) --------------

  /// The deterministic-simulation internals behind one narrow handle
  /// (meaningless on the threaded backend; the FaultEngine and the chaos
  /// and scripted scenarios are sim-pinned, see docs/fault_injection.md).
  SimHandles sim() { return SimHandles{clock_, *network_, *events_}; }

  [[deprecated("use sim().clock")]] SimClock& clock() { return clock_; }
  [[deprecated("use sim().network")]] SimNetwork& network() {
    return *network_;
  }
  [[deprecated("use sim().events")]] EventQueue& events() { return *events_; }

  /// Cluster-wide distributed transaction manager.
  TransactionManager& tx() { return *tm_; }
  GroupCommunication& gc() { return *gc_; }
  ClassRegistry& classes() { return classes_; }
  ConstraintRepository& constraints() { return constraint_repository_; }

  /// Per-application constraint repository (created on first use and
  /// registered with every node's CCMgr).  Constraint names only need to
  /// be unique within one application (Section 5.3).
  ConstraintRepository& application_constraints(const std::string& name);
  ThreatStore& threats() { return *threat_store_; }
  RecordStore& threat_db() { return *threat_db_; }
  NodeWeights& weights() { return *weights_; }
  std::shared_ptr<NodeWeights> weights_ptr() { return weights_; }
  std::shared_ptr<ObjectDirectory> directory() { return directory_; }
  const ClusterConfig& config() const { return config_; }

  /// Observability hub shared by every service of this cluster (trace
  /// recorder + latency histograms); disabled unless configured/enabled.
  obs::Observability& obs() { return obs_; }

  // -- nodes -------------------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  DedisysNode& node(std::size_t index) { return *nodes_.at(index); }
  DedisysNode* node_by_id(NodeId id);

  /// All logical objects of `class_name` (query support for constraints
  /// without a context object, and for re-validation after runtime
  /// constraint changes).
  [[nodiscard]] std::vector<ObjectId> objects_of(
      const std::string& class_name) const;

  // -- sharded front door (value-typed client API) -----------------------------

  /// The shard map partitioning the entity space across replica groups
  /// (one group covering every node when config.shards == 1).
  shard::ShardMap& shards() { return *shard_map_; }

  /// The admission layer: bounded priority queues, fee escalation, load
  /// shedding, batched apply.
  shard::FrontDoor& front_door() { return *front_door_; }

  /// Submits one client request through the front door: routed to its
  /// owning shard (forwarded when mis-addressed), fee-checked, queued or
  /// shed with an explicit reason.
  shard::Submission submit(shard::Request request) {
    return front_door_->submit(std::move(request));
  }

  /// Applies one admission batch per shard; returns requests applied.
  std::size_t pump() { return front_door_->pump(); }

  // -- failure injection ----------------------------------------------------------

  /// Applies one typed fault operation, routing node-lifecycle ops through
  /// the full middleware path (crash drops volatile replica state, restart
  /// recovers in-doubt transactions and rebuilds replicas, partitions are
  /// recorded for reconciliation and traced) and everything else straight
  /// to the sim network — the same dispatch a wired FaultEngine uses.
  void inject(const fault::Op& op);

  /// Restart overload: returns the number of replicas rebuilt.
  std::size_t inject(const fault::Restart& op);

  /// Same as inject(fault::Partition), with node ids (fault-engine
  /// partition actions route here so the groups are recorded for
  /// reconciliation and traced).
  void split_ids(std::vector<std::vector<NodeId>> node_groups);

  [[deprecated("use inject(fault::split_indices({...}))")]] void split(
      const std::vector<std::vector<std::size_t>>& groups);

  [[deprecated("use inject(fault::Heal{})")]] void heal();

  [[deprecated("use inject(fault::Crash{node(i).id()})")]] void crash_node(
      std::size_t index);

  [[deprecated("use inject(fault::Restart{node(i).id()})")]] std::size_t
  restart_node(std::size_t index);

  /// Wires a fault engine to this cluster: its crash/restart actions
  /// route through crash_node/restart_node (index resolved from NodeId)
  /// and its trace events land in this cluster's observability hub.
  void adopt_fault_engine(FaultEngine& engine);

  // -- reconciliation (Section 4.4) -------------------------------------------------

  struct ReconciliationReport {
    ReplicaReconcileStats replica;
    ConstraintConsistencyManager::ReconcileStats constraints;
    SimDuration replica_time = 0;
    SimDuration constraint_time = 0;
  };

  /// Runs both reconciliation steps: replica reconciliation (update
  /// propagation + conflict resolution), then constraint reconciliation
  /// (threat re-evaluation + application callbacks).  Nodes return to
  /// Healthy mode afterwards.
  ReconciliationReport reconcile(
      ReplicaConsistencyHandler* replica_handler = nullptr,
      ConstraintReconciliationHandler* constraint_handler = nullptr,
      std::size_t coordinator = 0);

 private:
  /// Typed-op implementations shared by inject(), the deprecated wrappers
  /// and the fault-engine handlers.
  void do_heal();
  void do_crash(DedisysNode& n);
  std::size_t do_restart(DedisysNode& n);

  ClusterConfig config_;
  SimClock clock_;
  obs::Observability obs_;
  std::unique_ptr<SimNetwork> network_;
  std::unique_ptr<EventQueue> events_;
  /// Destroyed after nodes_ (declared before them): node teardown still
  /// unsubscribes GMS listeners through the runtime.
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<TransactionManager> tm_;
  std::unique_ptr<GroupCommunication> gc_;
  std::shared_ptr<NodeWeights> weights_;
  std::shared_ptr<ObjectDirectory> directory_;
  ClassRegistry classes_;
  ConstraintRepository constraint_repository_;
  std::map<std::string, std::unique_ptr<ConstraintRepository>>
      app_repositories_;
  std::unique_ptr<RecordStore> threat_db_;
  std::unique_ptr<ThreatStore> threat_store_;
  std::vector<std::unique_ptr<DedisysNode>> nodes_;
  std::vector<std::vector<NodeId>> last_partition_groups_;
  /// Constructed after nodes_ (needs their ids); pure bookkeeping until
  /// the first submit(), so a shards=1 cluster that never uses the front
  /// door behaves byte-identically to the pre-shard middleware.
  std::unique_ptr<shard::ShardMap> shard_map_;
  std::unique_ptr<shard::FrontDoor> front_door_;
};

}  // namespace dedisys
