// Minimal JSON value with serialization and parsing.
//
// The observability exporters (bench results, /metrics endpoint, trace
// dumps) need machine-readable output, and the tests need to read that
// output back to verify it round-trips.  This is a deliberately small
// subset of JSON: objects preserve insertion order (stable output for
// diffs), numbers are int64 or double, no \uXXXX escapes beyond ASCII
// pass-through.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/errors.h"

namespace dedisys::obs {

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::Bool), bool_(b) {}  // NOLINT
  Json(int v) : type_(Type::Int), int_(v) {}  // NOLINT
  Json(std::int64_t v) : type_(Type::Int), int_(v) {}  // NOLINT
  Json(std::uint64_t v)  // NOLINT
      : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::Double), double_(v) {}  // NOLINT
  Json(const char* s) : type_(Type::String), string_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}  // NOLINT
  Json(Array a) : type_(Type::Array), array_(std::move(a)) {}  // NOLINT
  Json(Object o) : type_(Type::Object), object_(std::move(o)) {}  // NOLINT

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::Int || type_ == Type::Double;
  }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  [[nodiscard]] bool as_bool() const {
    require(Type::Bool);
    return bool_;
  }
  [[nodiscard]] std::int64_t as_int() const {
    if (type_ == Type::Double) return static_cast<std::int64_t>(double_);
    require(Type::Int);
    return int_;
  }
  [[nodiscard]] double as_double() const {
    if (type_ == Type::Int) return static_cast<double>(int_);
    require(Type::Double);
    return double_;
  }
  [[nodiscard]] const std::string& as_string() const {
    require(Type::String);
    return string_;
  }
  [[nodiscard]] const Array& items() const {
    require(Type::Array);
    return array_;
  }
  [[nodiscard]] const Object& members() const {
    require(Type::Object);
    return object_;
  }

  [[nodiscard]] std::size_t size() const {
    if (type_ == Type::Array) return array_.size();
    if (type_ == Type::Object) return object_.size();
    throw ConfigError("json: size() on non-container");
  }

  void push_back(Json value) {
    require(Type::Array);
    array_.push_back(std::move(value));
  }

  /// Sets (or replaces) an object member, preserving first-insertion order.
  void set(const std::string& key, Json value) {
    require(Type::Object);
    for (auto& [k, v] : object_) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    object_.emplace_back(key, std::move(value));
  }

  [[nodiscard]] bool contains(const std::string& key) const {
    require(Type::Object);
    for (const auto& [k, v] : object_) {
      if (k == key) return true;
    }
    return false;
  }

  [[nodiscard]] const Json& at(const std::string& key) const {
    require(Type::Object);
    for (const auto& [k, v] : object_) {
      if (k == key) return v;
    }
    throw ConfigError("json: missing key: " + key);
  }

  [[nodiscard]] const Json& at(std::size_t index) const {
    require(Type::Array);
    if (index >= array_.size()) throw ConfigError("json: index out of range");
    return array_[index];
  }

  // -- serialization ----------------------------------------------------------

  /// Serializes the value; `indent` >= 0 pretty-prints with that many
  /// spaces per level, -1 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = -1) const {
    std::string out;
    write(out, indent, 0);
    return out;
  }

  // -- parsing ---------------------------------------------------------------

  /// Parses a JSON document; throws ConfigError on malformed input or
  /// trailing garbage.
  static Json parse(const std::string& text) {
    std::size_t pos = 0;
    Json v = parse_value(text, pos);
    skip_ws(text, pos);
    if (pos != text.size()) throw ConfigError("json: trailing characters");
    return v;
  }

 private:
  void require(Type t) const {
    if (type_ != t) throw ConfigError("json: wrong value type");
  }

  static void write_string(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            static const char* hex = "0123456789abcdef";
            out += "\\u00";
            out += hex[(c >> 4) & 0xF];
            out += hex[c & 0xF];
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  static void write_double(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
    // Keep the number recognizably floating-point on round-trip.
    if (std::strpbrk(buf, ".eEnN") == nullptr) out += ".0";
  }

  void write(std::string& out, int indent, int depth) const {
    const std::string pad =
        indent >= 0 ? std::string(static_cast<std::size_t>(indent) *
                                      (static_cast<std::size_t>(depth) + 1),
                                  ' ')
                    : std::string();
    const std::string close_pad =
        indent >= 0
            ? std::string(
                  static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                  ' ')
            : std::string();
    const char* nl = indent >= 0 ? "\n" : "";
    const char* colon = indent >= 0 ? ": " : ":";
    switch (type_) {
      case Type::Null: out += "null"; return;
      case Type::Bool: out += bool_ ? "true" : "false"; return;
      case Type::Int: out += std::to_string(int_); return;
      case Type::Double: write_double(out, double_); return;
      case Type::String: write_string(out, string_); return;
      case Type::Array: {
        if (array_.empty()) {
          out += "[]";
          return;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < array_.size(); ++i) {
          out += pad;
          array_[i].write(out, indent, depth + 1);
          if (i + 1 < array_.size()) out += ',';
          out += nl;
        }
        out += close_pad;
        out += ']';
        return;
      }
      case Type::Object: {
        if (object_.empty()) {
          out += "{}";
          return;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < object_.size(); ++i) {
          out += pad;
          write_string(out, object_[i].first);
          out += colon;
          object_[i].second.write(out, indent, depth + 1);
          if (i + 1 < object_.size()) out += ',';
          out += nl;
        }
        out += close_pad;
        out += '}';
        return;
      }
    }
  }

  static void skip_ws(const std::string& t, std::size_t& pos) {
    while (pos < t.size() && (t[pos] == ' ' || t[pos] == '\t' ||
                              t[pos] == '\n' || t[pos] == '\r')) {
      ++pos;
    }
  }

  static char peek(const std::string& t, std::size_t pos) {
    if (pos >= t.size()) throw ConfigError("json: unexpected end of input");
    return t[pos];
  }

  static void expect(const std::string& t, std::size_t& pos, char c) {
    if (peek(t, pos) != c) {
      throw ConfigError(std::string("json: expected '") + c + "' at offset " +
                        std::to_string(pos));
    }
    ++pos;
  }

  static Json parse_value(const std::string& t, std::size_t& pos) {
    skip_ws(t, pos);
    const char c = peek(t, pos);
    switch (c) {
      case '{': return parse_object(t, pos);
      case '[': return parse_array(t, pos);
      case '"': return Json(parse_string(t, pos));
      case 't':
        parse_literal(t, pos, "true");
        return Json(true);
      case 'f':
        parse_literal(t, pos, "false");
        return Json(false);
      case 'n':
        parse_literal(t, pos, "null");
        return Json();
      default: return parse_number(t, pos);
    }
  }

  static void parse_literal(const std::string& t, std::size_t& pos,
                            const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) expect(t, pos, *p);
  }

  static std::string parse_string(const std::string& t, std::size_t& pos) {
    expect(t, pos, '"');
    std::string out;
    while (true) {
      const char c = peek(t, pos++);
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = peek(t, pos++);
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > t.size()) {
              throw ConfigError("json: truncated \\u escape");
            }
            const unsigned code =
                static_cast<unsigned>(std::stoul(t.substr(pos, 4), nullptr, 16));
            pos += 4;
            if (code > 0x7F) {
              throw ConfigError("json: non-ASCII \\u escape unsupported");
            }
            out += static_cast<char>(code);
            break;
          }
          default: throw ConfigError("json: bad escape sequence");
        }
      } else {
        out += c;
      }
    }
  }

  static Json parse_number(const std::string& t, std::size_t& pos) {
    const std::size_t start = pos;
    if (peek(t, pos) == '-') ++pos;
    bool is_double = false;
    while (pos < t.size()) {
      const char c = t[pos];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) throw ConfigError("json: invalid number");
    const std::string text = t.substr(start, pos - start);
    try {
      if (is_double) return Json(std::stod(text));
      return Json(static_cast<std::int64_t>(std::stoll(text)));
    } catch (const std::exception&) {
      throw ConfigError("json: invalid number: " + text);
    }
  }

  static Json parse_array(const std::string& t, std::size_t& pos) {
    expect(t, pos, '[');
    Json out = array();
    skip_ws(t, pos);
    if (peek(t, pos) == ']') {
      ++pos;
      return out;
    }
    while (true) {
      out.push_back(parse_value(t, pos));
      skip_ws(t, pos);
      const char c = peek(t, pos++);
      if (c == ']') return out;
      if (c != ',') throw ConfigError("json: expected ',' or ']'");
    }
  }

  static Json parse_object(const std::string& t, std::size_t& pos) {
    expect(t, pos, '{');
    Json out = object();
    skip_ws(t, pos);
    if (peek(t, pos) == '}') {
      ++pos;
      return out;
    }
    while (true) {
      skip_ws(t, pos);
      std::string key = parse_string(t, pos);
      skip_ws(t, pos);
      expect(t, pos, ':');
      out.set(key, parse_value(t, pos));
      skip_ws(t, pos);
      const char c = peek(t, pos++);
      if (c == '}') return out;
      if (c != ',') throw ConfigError("json: expected ',' or '}'");
    }
  }

  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace dedisys::obs
