// Span model: causal units of work reconstructed from the trace stream.
//
// A span is everything that happened between one span.start/span.end pair
// emitted by an obs::SpanGuard — an invocation, a constraint validation, a
// 2PC commit, a GCS multicast leg, a replication propagate/apply, a
// reconciliation pass.  Spans of one trace form a tree rooted at the
// invocation (or lifecycle operation) that entered the middleware; every
// ordinary TraceEvent stamped with a span id hangs off that tree.  The
// reconstruction here is pure data plumbing — analysis (critical paths,
// phase attribution, the trace-driven invariant checker) lives in
// obs/analyze.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys::obs {

/// One reconstructed unit of work.
struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;   ///< 0 = root of its trace
  std::uint64_t trace_id = 0;
  std::string label;          ///< "invoke", "2pc", "gcs.multicast", ...
  NodeId node;
  ObjectId object;
  TxId tx;
  SimTime start = 0;
  SimTime end = 0;
  bool saw_start = false;     ///< span.start survived the ring buffer
  bool saw_end = false;       ///< span.end survived the ring buffer
  std::size_t events = 0;     ///< ordinary events stamped with this span
  std::vector<std::uint64_t> children;  ///< child span ids, in start order

  [[nodiscard]] SimDuration duration() const {
    return end > start ? end - start : 0;
  }
};

/// All spans of one trace, keyed by span id (deterministic order).
struct SpanTree {
  std::uint64_t trace_id = 0;
  std::map<std::uint64_t, Span> spans;
  /// Spans with no (retained) parent, in start order; normally exactly the
  /// invocation root, more when the ring buffer dropped ancestors.
  std::vector<std::uint64_t> roots;

  [[nodiscard]] const Span* find(std::uint64_t id) const {
    auto it = spans.find(id);
    return it == spans.end() ? nullptr : &it->second;
  }
};

/// Groups `events` into span trees by trace id.  Events carrying no trace
/// id are ignored; span intervals fall back to the min/max event stamp when
/// the span.start/span.end markers were dropped by the ring buffer.
[[nodiscard]] std::vector<SpanTree> build_span_trees(
    const std::vector<TraceEvent>& events);

}  // namespace dedisys::obs
