// Fixed-bucket latency histograms over simulated time.
//
// The Chapter-5 evaluation reports throughput and cost distributions of
// middleware operations.  Operations are timed with SimClock deltas and
// recorded into log-spaced fixed buckets (1 µs … 50 s), which keeps
// recording O(log #buckets) with zero allocation on the hot path and
// makes percentile estimation (p50/p95/p99) a single cumulative walk with
// linear interpolation inside the winning bucket.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "util/sim_clock.h"

namespace dedisys::obs {

/// Upper bucket boundaries in simulated microseconds (1-2-5 ladder); the
/// last bucket is open-ended.
inline constexpr std::array<SimDuration, 24> kLatencyBucketBounds = {
    1,      2,      5,      10,      20,      50,      100,      200,
    500,    1000,   2000,   5000,    10000,   20000,   50000,    100000,
    200000, 500000, 1000000, 2000000, 5000000, 10000000, 20000000, 50000000};

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = kLatencyBucketBounds.size() + 1;

  void record(SimDuration d) {
    if (d < 0) d = 0;
    const auto* it = std::lower_bound(kLatencyBucketBounds.begin(),
                                      kLatencyBucketBounds.end(), d);
    ++counts_[static_cast<std::size_t>(it - kLatencyBucketBounds.begin())];
    ++count_;
    sum_ += d;
    if (count_ == 1 || d < min_) min_ = d;
    if (d > max_) max_ = d;
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] SimDuration min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] SimDuration max() const { return max_; }
  [[nodiscard]] SimDuration sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::size_t bucket_count(std::size_t i) const {
    return counts_.at(i);
  }

  /// Percentile estimate in simulated microseconds, `p` in (0, 100].
  /// Interpolates linearly inside the bucket holding the target rank and
  /// clamps to the observed min/max so estimates never leave the data range.
  /// Degenerate shapes are deterministic: an empty histogram reports 0 and
  /// a distribution confined to a single bucket reports that bucket's
  /// midpoint for every percentile — interpolating within one bucket would
  /// fabricate spread the data cannot support (p50 < p99 from identical
  /// samples).
  [[nodiscard]] double percentile(double p) const {
    if (count_ == 0) return 0.0;
    if (const auto only = single_bucket()) {
      const std::size_t i = *only;
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(kLatencyBucketBounds[i - 1]);
      const double upper = i < kLatencyBucketBounds.size()
                               ? static_cast<double>(kLatencyBucketBounds[i])
                               : static_cast<double>(max_);
      return std::clamp((lower + upper) / 2.0, static_cast<double>(min()),
                        static_cast<double>(max_));
    }
    const double rank = p / 100.0 * static_cast<double>(count_);
    std::size_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;
      const std::size_t before = cumulative;
      cumulative += counts_[i];
      if (static_cast<double>(cumulative) < rank) continue;
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(kLatencyBucketBounds[i - 1]);
      const double upper = i < kLatencyBucketBounds.size()
                               ? static_cast<double>(kLatencyBucketBounds[i])
                               : static_cast<double>(max_);
      const double within =
          (rank - static_cast<double>(before)) / static_cast<double>(counts_[i]);
      const double estimate = lower + within * (upper - lower);
      return std::clamp(estimate, static_cast<double>(min()),
                        static_cast<double>(max_));
    }
    return static_cast<double>(max_);
  }

  void reset() {
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
  }

  /// Folds another histogram into this one (same fixed buckets, so merging
  /// is exact).  Used to combine per-thread histograms after a wall-clock
  /// benchmark run.
  void merge(const LatencyHistogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
  }

 private:
  /// Index of the only nonzero bucket, or nullopt when 0 or 2+ are used.
  [[nodiscard]] std::optional<std::size_t> single_bucket() const {
    std::optional<std::size_t> only;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;
      if (only) return std::nullopt;
      only = i;
    }
    return only;
  }

  std::array<std::size_t, kBuckets> counts_{};
  std::size_t count_ = 0;
  SimDuration sum_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
};

/// The percentile summary exported for one operation kind.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  SimDuration min = 0;
  SimDuration max = 0;
};

[[nodiscard]] inline LatencySummary summarize(const LatencyHistogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.mean = h.mean();
  s.p50 = h.percentile(50);
  s.p95 = h.percentile(95);
  s.p99 = h.percentile(99);
  s.min = h.min();
  s.max = h.max();
  return s;
}

/// Histograms keyed by operation kind ("invoke.write", "tx.commit", ...).
class LatencyRegistry {
 public:
  void record(const std::string& key, SimDuration d) {
    histograms_[key].record(d);
  }

  [[nodiscard]] const LatencyHistogram* find(const std::string& key) const {
    auto it = histograms_.find(key);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, LatencyHistogram>& all() const {
    return histograms_;
  }

  [[nodiscard]] bool empty() const { return histograms_.empty(); }
  void clear() { histograms_.clear(); }

 private:
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace dedisys::obs
