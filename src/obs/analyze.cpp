#include "obs/analyze.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <unordered_map>

namespace dedisys::obs {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Members list out of a view.change detail: "members={0,1,2} complete=…".
std::vector<std::uint64_t> parse_view_members(const std::string& detail) {
  std::vector<std::uint64_t> members;
  const std::size_t open = detail.find('{');
  const std::size_t close = detail.find('}', open == std::string::npos ? 0 : open);
  if (open == std::string::npos || close == std::string::npos) return members;
  std::size_t i = open + 1;
  while (i < close) {
    if (detail[i] < '0' || detail[i] > '9') {
      ++i;
      continue;
    }
    members.push_back(std::strtoull(detail.c_str() + i, nullptr, 10));
    while (i < close && detail[i] >= '0' && detail[i] <= '9') ++i;
  }
  std::sort(members.begin(), members.end());
  return members;
}

std::string joined(const std::vector<std::uint64_t>& ids) {
  std::string out = "{";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  return out + "}";
}

/// Threat identity as CCMgr forms it: "<constraint>@<context object|->".
std::string threat_identity(const TraceEvent& e) {
  return e.label + '@' +
         (e.object.valid() ? std::to_string(e.object.value()) : "-");
}

}  // namespace

const char* phase_of(const std::string& span_label) {
  if (starts_with(span_label, "gcs.")) return "network";
  if (starts_with(span_label, "replication.")) return "replication";
  if (starts_with(span_label, "validation")) return "validation";
  if (starts_with(span_label, "reconcile")) return "reconciliation";
  if (span_label == "2pc") return "2pc";
  return "interception";
}

std::vector<SpanTree> build_span_trees(const std::vector<TraceEvent>& events) {
  // trace id -> (span id -> span); std::map keeps the output deterministic.
  std::map<std::uint64_t, std::map<std::uint64_t, Span>> by_trace;
  for (const TraceEvent& e : events) {
    if (e.trace_id == 0 || e.span_id == 0) continue;
    Span& span = by_trace[e.trace_id][e.span_id];
    if (span.id == 0) {
      span.id = e.span_id;
      span.parent = e.parent_span;
      span.trace_id = e.trace_id;
      span.start = e.at;
      span.end = e.at;
    }
    switch (e.kind) {
      case TraceEventKind::SpanStart:
        span.saw_start = true;
        span.start = e.at;
        span.label = e.label;
        span.node = e.node;
        span.object = e.object;
        span.tx = e.tx;
        break;
      case TraceEventKind::SpanEnd:
        span.saw_end = true;
        span.end = e.at;
        if (span.label.empty()) span.label = e.label;
        break;
      default:
        ++span.events;
        if (!span.saw_start && e.at < span.start) span.start = e.at;
        if (!span.saw_end && e.at > span.end) span.end = e.at;
        break;
    }
  }

  std::vector<SpanTree> trees;
  trees.reserve(by_trace.size());
  for (auto& [trace_id, spans] : by_trace) {
    SpanTree tree;
    tree.trace_id = trace_id;
    tree.spans = std::move(spans);
    for (auto& [id, span] : tree.spans) {
      auto parent = tree.spans.find(span.parent);
      if (span.parent != 0 && parent != tree.spans.end()) {
        parent->second.children.push_back(id);
      } else {
        tree.roots.push_back(id);
      }
    }
    const auto by_start = [&tree](std::uint64_t a, std::uint64_t b) {
      const Span& sa = tree.spans.at(a);
      const Span& sb = tree.spans.at(b);
      return sa.start != sb.start ? sa.start < sb.start : a < b;
    };
    for (auto& [id, span] : tree.spans) {
      (void)id;
      std::sort(span.children.begin(), span.children.end(), by_start);
    }
    std::sort(tree.roots.begin(), tree.roots.end(), by_start);
    trees.push_back(std::move(tree));
  }
  return trees;
}

namespace {

/// Critical path: from the root, keep descending into the child span that
/// finishes last — the chain that bounds the trace's end-to-end latency.
std::vector<CriticalHop> critical_path_of(const SpanTree& tree,
                                          std::uint64_t root) {
  std::vector<CriticalHop> path;
  const Span* cur = tree.find(root);
  while (cur != nullptr && path.size() < 64) {
    const Span* next = nullptr;
    for (std::uint64_t child_id : cur->children) {
      const Span* child = tree.find(child_id);
      if (child == nullptr) continue;
      if (next == nullptr || child->end > next->end ||
          (child->end == next->end && child->id > next->id)) {
        next = child;
      }
    }
    CriticalHop hop;
    hop.span = cur->id;
    hop.label = cur->label;
    hop.node = cur->node;
    hop.start = cur->start;
    hop.end = cur->end;
    hop.self_us = cur->duration() - (next != nullptr ? next->duration() : 0);
    if (hop.self_us < 0) hop.self_us = 0;
    path.push_back(std::move(hop));
    cur = next;
  }
  return path;
}

}  // namespace

TraceAnalysis analyze(const std::vector<TraceEvent>& events) {
  TraceAnalysis out;
  out.trees = build_span_trees(events);

  for (const SpanTree& tree : out.trees) {
    TraceSummary summary;
    summary.trace_id = tree.trace_id;
    bool first = true;
    for (const auto& [id, span] : tree.spans) {
      (void)id;
      if (first || span.start < summary.start) summary.start = span.start;
      if (first || span.end > summary.end) summary.end = span.end;
      first = false;
      summary.events += span.events;
      SimDuration self = span.duration();
      for (std::uint64_t child_id : span.children) {
        const Span* child = tree.find(child_id);
        if (child != nullptr) self -= child->duration();
      }
      if (self < 0) self = 0;
      summary.phase_self_us[phase_of(span.label)] += self;
    }
    summary.spans = tree.spans.size();
    summary.duration_us = summary.end - summary.start;
    if (!tree.roots.empty()) {
      const Span& root = tree.spans.at(tree.roots.front());
      summary.root_label = root.label;
      summary.root_node = root.node;
      summary.critical_path = critical_path_of(tree, root.id);
    }
    out.traces.push_back(std::move(summary));
  }

  SimTime last_at = 0;
  // node value -> (mode, since); nodes are "healthy" from the first event.
  std::map<std::uint64_t, std::pair<std::string, SimTime>> mode_state;
  SimTime first_at = events.empty() ? 0 : events.front().at;
  for (const TraceEvent& e : events) {
    if (e.at > last_at) last_at = e.at;
    if (e.trace_id != 0 && e.kind != TraceEventKind::SpanStart &&
        e.kind != TraceEventKind::SpanEnd) {
      ++out.traced_events;
    }
    if (e.trace_id == 0) ++out.orphan_events;
    if (e.kind != TraceEventKind::ModeTransition || !e.node.valid()) continue;
    ModeSample sample;
    sample.at = e.at;
    sample.node = e.node;
    sample.to = e.label;
    sample.from = starts_with(e.detail, "from ") ? e.detail.substr(5)
                                                 : e.detail;
    auto [it, inserted] =
        mode_state.try_emplace(e.node.value(), sample.from, first_at);
    out.mode_residency[e.node.value()][it->second.first] +=
        e.at - it->second.second;
    it->second = {sample.to, e.at};
    (void)inserted;
    out.mode_timeline.push_back(std::move(sample));
  }
  for (const auto& [node, state] : mode_state) {
    out.mode_residency[node][state.first] += last_at - state.second;
  }
  return out;
}

std::vector<const TraceSummary*> slowest_traces(const TraceAnalysis& analysis,
                                                std::size_t top_k) {
  std::vector<const TraceSummary*> sorted;
  sorted.reserve(analysis.traces.size());
  for (const TraceSummary& t : analysis.traces) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceSummary* a, const TraceSummary* b) {
              return a->duration_us != b->duration_us
                         ? a->duration_us > b->duration_us
                         : a->trace_id < b->trace_id;
            });
  if (sorted.size() > top_k) sorted.resize(top_k);
  return sorted;
}

TraceCheckResult check_events(const std::vector<TraceEvent>& events,
                              std::size_t dropped) {
  TraceCheckResult result;
  result.complete = dropped == 0;

  // -- no-lost-threats bookkeeping.
  struct LiveThreat {
    std::uint64_t tx = 0;   ///< accepting transaction (0 = stored directly)
    bool durable = false;   ///< stored (tx committed or no tx)
  };
  std::map<std::string, LiveThreat> live;
  std::map<std::uint64_t, std::vector<std::string>> staged_by_tx;
  std::set<std::string> tracked;
  bool in_reconcile = false;
  std::set<std::string> window_snapshot;
  std::set<std::string> window_seen;

  // -- one-primary-per-partition bookkeeping.
  std::map<std::uint64_t, std::vector<std::uint64_t>> views;
  std::set<std::string> reported_view_pairs;
  bool views_dirty = false;
  SimTime last_view_at = 0;

  const auto check_views = [&]() {
    ++result.view_checks;
    for (auto a = views.begin(); a != views.end(); ++a) {
      for (auto b = std::next(a); b != views.end(); ++b) {
        const bool mutual =
            std::binary_search(a->second.begin(), a->second.end(), b->first) &&
            std::binary_search(b->second.begin(), b->second.end(), a->first);
        if (!mutual || a->second == b->second) continue;
        const std::string key = std::to_string(a->first) + joined(a->second) +
                                '/' + std::to_string(b->first) +
                                joined(b->second);
        if (!reported_view_pairs.insert(key).second) continue;
        result.violations.push_back(
            {"one-primary-per-partition",
             "nodes " + std::to_string(a->first) + " and " +
                 std::to_string(b->first) +
                 " believe they share a partition but installed different "
                 "views " +
                 joined(a->second) + " vs " + joined(b->second)});
      }
    }
  };

  for (const TraceEvent& e : events) {
    // Views are compared only once simulated time moves past the install
    // burst: every node's install for one membership change carries the
    // same stamp (the GMS recompute costs no simulated time), but other
    // same-instant events — mode transitions, the fault action itself —
    // interleave with the installs, so a mid-burst comparison would flag
    // the half-updated state as a transient false split brain.
    if (views_dirty && e.at > last_view_at) {
      check_views();
      views_dirty = false;
    }
    switch (e.kind) {
      case TraceEventKind::ViewChange:
        if (e.node.valid()) {
          views[e.node.value()] = parse_view_members(e.detail);
          views_dirty = true;
          last_view_at = e.at;
        }
        break;
      case TraceEventKind::ThreatAccepted: {
        const std::string id = threat_identity(e);
        tracked.insert(id);
        // A repeat occurrence of an identity that is already durably
        // stored (IdenticalOnce dedup) must not be downgraded to
        // tx-staged: aborting the repeat leaves the original store live.
        if (auto it = live.find(id); it != live.end() && it->second.durable) {
          break;
        }
        if (e.tx.valid()) {
          live[id] = LiveThreat{e.tx.value(), false};
          staged_by_tx[e.tx.value()].push_back(id);
        } else {
          live[id] = LiveThreat{0, true};
        }
        break;
      }
      case TraceEventKind::TxCommit:
        if (e.tx.valid()) {
          auto it = staged_by_tx.find(e.tx.value());
          if (it != staged_by_tx.end()) {
            for (const std::string& id : it->second) {
              auto t = live.find(id);
              if (t != live.end() && t->second.tx == e.tx.value()) {
                t->second.durable = true;
              }
            }
            staged_by_tx.erase(it);
          }
        }
        break;
      case TraceEventKind::TxAbort:
        if (e.tx.valid()) {
          auto it = staged_by_tx.find(e.tx.value());
          if (it != staged_by_tx.end()) {
            for (const std::string& id : it->second) {
              auto t = live.find(id);
              if (t != live.end() && t->second.tx == e.tx.value() &&
                  !t->second.durable) {
                live.erase(t);
              }
            }
            staged_by_tx.erase(it);
          }
        }
        break;
      case TraceEventKind::ThreatResolved:
        live.erase(threat_identity(e));
        break;
      case TraceEventKind::ReconcileStart:
        in_reconcile = true;
        window_snapshot.clear();
        window_seen.clear();
        for (const auto& [id, threat] : live) {
          if (threat.durable) window_snapshot.insert(id);
        }
        break;
      case TraceEventKind::ThreatReconciled: {
        const std::string id = threat_identity(e);
        if (in_reconcile) window_seen.insert(id);
        if (e.detail == "satisfied" || e.detail == "resolved" ||
            e.detail == "rolled-back") {
          live.erase(id);
        }
        break;
      }
      case TraceEventKind::ReconcileEnd:
        if (in_reconcile) {
          ++result.reconciles;
          for (const std::string& id : window_snapshot) {
            if (window_seen.count(id) != 0 || live.count(id) == 0) continue;
            result.violations.push_back(
                {"no-lost-threats",
                 "threat " + id +
                     " was accepted but never re-evaluated during the "
                     "reconciliation ending at " +
                     std::to_string(e.at) + " us"});
          }
          in_reconcile = false;
        }
        break;
      default:
        break;
    }
  }
  if (views_dirty) check_views();
  result.threats_tracked = tracked.size();
  return result;
}

std::vector<TraceEvent> events_from_json(const Json& doc) {
  static constexpr TraceEventKind kAllKinds[] = {
      TraceEventKind::SpanStart,       TraceEventKind::SpanEnd,
      TraceEventKind::InvocationStart, TraceEventKind::InvocationEnd,
      TraceEventKind::Validation,      TraceEventKind::ValidationSkipped,
      TraceEventKind::ValidationProven,
      TraceEventKind::ValidationMemoHit,
      TraceEventKind::ValidationMemoInvalidate,
      TraceEventKind::ThreatDetected,  TraceEventKind::ThreatNegotiated,
      TraceEventKind::ThreatAccepted,  TraceEventKind::ThreatRejected,
      TraceEventKind::ThreatReconciled, TraceEventKind::ThreatResolved,
      TraceEventKind::TxPrepare,       TraceEventKind::TxCommit,
      TraceEventKind::TxAbort,         TraceEventKind::ViewChange,
      TraceEventKind::ModeTransition,  TraceEventKind::ReplicaPropagate,
      TraceEventKind::ReconcileStart,  TraceEventKind::ReconcileEnd,
      TraceEventKind::NetworkSplit,    TraceEventKind::NetworkHeal,
      TraceEventKind::FaultInjected,   TraceEventKind::MsgRetried,
      TraceEventKind::MsgDeduped,      TraceEventKind::NodeRestarted};
  static const std::unordered_map<std::string, TraceEventKind> kByName = [] {
    std::unordered_map<std::string, TraceEventKind> map;
    for (TraceEventKind kind : kAllKinds) map.emplace(to_string(kind), kind);
    return map;
  }();

  const Json* list = &doc;
  if (doc.is_object() && doc.contains("trace")) list = &doc.at("trace");
  if (list->is_object() && list->contains("events")) {
    list = &list->at("events");
  }
  std::vector<TraceEvent> events;
  if (!list->is_array()) return events;
  for (std::size_t i = 0; i < list->size(); ++i) {
    const Json& item = list->at(i);
    if (!item.is_object()) continue;
    const auto u64 = [&item](const char* key) {
      return static_cast<std::uint64_t>(item.at(key).as_int());
    };
    TraceEvent e;
    if (item.contains("seq")) e.seq = u64("seq");
    if (item.contains("at_us")) e.at = item.at("at_us").as_int();
    if (item.contains("kind")) {
      auto it = kByName.find(item.at("kind").as_string());
      if (it == kByName.end()) continue;
      e.kind = it->second;
    }
    if (item.contains("node")) e.node = NodeId{u64("node")};
    if (item.contains("object")) e.object = ObjectId{u64("object")};
    if (item.contains("tx")) e.tx = TxId{u64("tx")};
    if (item.contains("label")) e.label = item.at("label").as_string();
    if (item.contains("detail")) e.detail = item.at("detail").as_string();
    if (item.contains("trace")) e.trace_id = u64("trace");
    if (item.contains("span")) e.span_id = u64("span");
    if (item.contains("parent")) e.parent_span = u64("parent");
    events.push_back(std::move(e));
  }
  return events;
}

Json spans_to_json(const TraceAnalysis& analysis, std::size_t top_k) {
  Json out = Json::object();
  out.set("traces", analysis.traces.size());
  out.set("traced_events", analysis.traced_events);
  out.set("orphan_events", analysis.orphan_events);
  Json top = Json::array();
  for (const TraceSummary* t : slowest_traces(analysis, top_k)) {
    Json entry = Json::object();
    entry.set("trace", t->trace_id);
    entry.set("root", t->root_label);
    if (t->root_node.valid()) entry.set("node", t->root_node.value());
    entry.set("start_us", t->start);
    entry.set("duration_us", t->duration_us);
    entry.set("spans", t->spans);
    entry.set("events", t->events);
    Json phases = Json::object();
    for (const auto& [phase, self_us] : t->phase_self_us) {
      phases.set(phase, self_us);
    }
    entry.set("phases", std::move(phases));
    top.push_back(std::move(entry));
  }
  out.set("top", std::move(top));
  return out;
}

Json critical_path_to_json(const TraceAnalysis& analysis) {
  Json out = Json::array();
  const auto slowest = slowest_traces(analysis, 1);
  if (slowest.empty()) return out;
  for (const CriticalHop& hop : slowest.front()->critical_path) {
    Json entry = Json::object();
    entry.set("span", hop.span);
    entry.set("label", hop.label);
    if (hop.node.valid()) entry.set("node", hop.node.value());
    entry.set("start_us", hop.start);
    entry.set("end_us", hop.end);
    entry.set("self_us", hop.self_us);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace dedisys::obs
