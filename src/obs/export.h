// Exporters: JSON renderings of latency summaries and traces, plus the
// human-readable event timeline.
//
// Two consumers share these renderings: the AdminConsole / web bridge
// (operator inspection of a live cluster; see middleware/obs_export.h for
// the cluster-level document) and the benchmark harness (machine-readable
// BENCH_*.json result files).  Everything funnels through obs::Json so the
// output is parseable by the same code that verifies it in the tests.
#pragma once

#include <cstdio>
#include <string>

#include "obs/json.h"
#include "obs/observability.h"

namespace dedisys::obs {

[[nodiscard]] inline Json to_json(const LatencySummary& s) {
  Json out = Json::object();
  out.set("count", s.count);
  out.set("mean_us", s.mean);
  out.set("p50_us", s.p50);
  out.set("p95_us", s.p95);
  out.set("p99_us", s.p99);
  out.set("min_us", s.min);
  out.set("max_us", s.max);
  return out;
}

[[nodiscard]] inline Json to_json(const LatencyRegistry& registry) {
  Json out = Json::object();
  for (const auto& [key, histogram] : registry.all()) {
    out.set(key, to_json(summarize(histogram)));
  }
  return out;
}

[[nodiscard]] inline Json to_json(const TraceEvent& e) {
  Json out = Json::object();
  out.set("seq", e.seq);
  out.set("at_us", e.at);
  out.set("kind", to_string(e.kind));
  if (e.node.valid()) out.set("node", e.node.value());
  if (e.object.valid()) out.set("object", e.object.value());
  if (e.tx.valid()) out.set("tx", e.tx.value());
  if (!e.label.empty()) out.set("label", e.label);
  if (!e.detail.empty()) out.set("detail", e.detail);
  if (e.trace_id != 0) {
    out.set("trace", e.trace_id);
    out.set("span", e.span_id);
    if (e.parent_span != 0) out.set("parent", e.parent_span);
  }
  return out;
}

[[nodiscard]] inline Json to_json(const TraceRecorder& trace) {
  Json events = Json::array();
  for (const TraceEvent& e : trace.events()) events.push_back(to_json(e));
  Json out = Json::object();
  out.set("capacity", trace.capacity());
  out.set("size", trace.size());
  out.set("recorded", trace.recorded());
  out.set("dropped", trace.dropped());
  out.set("events", std::move(events));
  return out;
}

/// Human-readable timeline of the retained trace, one event per line:
///   [      1234 us] node 0  invocation.start   setValue  obj=3 tx=7
[[nodiscard]] inline std::string render_timeline(const TraceRecorder& trace) {
  std::string out;
  if (trace.dropped() > 0) {
    out += "WARNING: timeline is truncated - " +
           std::to_string(trace.dropped()) +
           " older events were dropped by the ring buffer (capacity " +
           std::to_string(trace.capacity()) + ")\n";
  }
  for (const TraceEvent& e : trace.events()) {
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "[%10lld us] ",
                  static_cast<long long>(e.at));
    out += prefix;
    if (e.node.valid()) {
      out += "node " + std::to_string(e.node.value()) + "  ";
    }
    std::string kind = to_string(e.kind);
    kind.resize(kind.size() < 18 ? 18 : kind.size(), ' ');
    out += kind;
    if (!e.label.empty()) out += " " + e.label;
    if (e.object.valid()) out += " obj=" + std::to_string(e.object.value());
    if (e.tx.valid()) out += " tx=" + std::to_string(e.tx.value());
    if (!e.detail.empty()) out += " (" + e.detail + ")";
    out += '\n';
  }
  if (trace.dropped() > 0) {
    out += "(+" + std::to_string(trace.dropped()) +
           " older events dropped by the ring buffer)\n";
  }
  return out;
}

}  // namespace dedisys::obs
