// The per-cluster observability hub: trace recorder + latency registry.
//
// One Observability instance is owned by the Cluster and wired (as a raw
// pointer) into every service that emits events: the node kernel, the
// CCMgr, the transaction manager, the replication manager and the GMS.
// It is disabled by default so the hot paths pay exactly one predictable
// branch (`obs::on(obs_)`); enabling it costs no simulated time, so traced
// and untraced runs produce identical Chapter-5 numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys::obs {

class Observability {
 public:
  [[nodiscard]] bool enabled() const { return enabled_; }

  void enable(std::size_t trace_capacity = 4096) {
    enabled_ = true;
    if (trace_.capacity() != trace_capacity) {
      trace_ = TraceRecorder(trace_capacity);
    }
  }

  void disable() { enabled_ = false; }

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] LatencyRegistry& latencies() { return latencies_; }
  [[nodiscard]] const LatencyRegistry& latencies() const { return latencies_; }

  /// Convenience recorder; callers must have checked enabled() already
  /// (via obs::on) so disabled clusters never build the strings below.
  /// Every event is stamped with the ambient span context (see SpanGuard).
  void event(SimTime at, TraceEventKind kind, NodeId node = {},
             ObjectId object = {}, TxId tx = {}, std::string label = {},
             std::string detail = {}) {
    TraceEvent e;
    e.at = at;
    e.kind = kind;
    e.node = node;
    e.object = object;
    e.tx = tx;
    e.label = std::move(label);
    e.detail = std::move(detail);
    const TraceContext& ctx = current();
    e.trace_id = ctx.trace_id;
    e.span_id = ctx.span_id;
    e.parent_span = ctx.parent_span;
    trace_.record(std::move(e));
  }

  void latency(const std::string& key, SimDuration d) {
    latencies_.record(key, d);
  }

  // -- causal span context ----------------------------------------------------
  //
  // The hub keeps an explicit stack of TraceContexts.  A SpanGuard pushes a
  // child of the ambient context (or a fresh root trace) on entry and pops
  // it on exit; because simulated message delivery is a direct call within
  // the sender's stack, the ambient context crosses "nodes" automatically.

  /// The ambient context events are stamped with (all-zero outside spans).
  [[nodiscard]] const TraceContext& current() const {
    static const TraceContext kNone{};
    return spans_.empty() ? kNone : spans_.back();
  }

  /// Opens a span: a child of `parent` when valid, of the ambient context
  /// otherwise, or a fresh root trace when neither exists.  Returns the new
  /// context.  Prefer SpanGuard over calling this directly.
  TraceContext push_span(const TraceContext& parent = {}) {
    const TraceContext& base = parent.valid() ? parent : current();
    TraceContext ctx;
    ctx.trace_id = base.valid() ? base.trace_id : ++next_trace_id_;
    ctx.span_id = ++next_span_id_;
    ctx.parent_span = base.span_id;
    spans_.push_back(ctx);
    return ctx;
  }

  void pop_span() {
    if (!spans_.empty()) spans_.pop_back();
  }

 private:
  bool enabled_ = false;
  TraceRecorder trace_;
  LatencyRegistry latencies_;
  std::vector<TraceContext> spans_;
  std::uint64_t next_trace_id_ = 0;
  std::uint64_t next_span_id_ = 0;
};

/// The single-branch guard instrumentation sites use:
///   if (obs::on(obs_)) obs_->event(...);
[[nodiscard]] inline bool on(const Observability* o) {
  return o != nullptr && o->enabled();
}

/// RAII span: when tracing is on, opens a span (child of the ambient
/// context, or of the explicit `parent` — used by reconciliation to join a
/// threat's originating trace) and emits span.start/span.end events; when
/// tracing is off it does strictly nothing, so untraced runs pay only the
/// obs::on branch.  Span boundaries carry no simulated-time cost.
class SpanGuard {
 public:
  SpanGuard(Observability* obs, const TimeSource& clock, std::string label,
            NodeId node = {}, ObjectId object = {}, TxId tx = {},
            TraceContext parent = {})
      : obs_(on(obs) ? obs : nullptr), clock_(clock), node_(node),
        object_(object), tx_(tx), label_(std::move(label)) {
    if (obs_ == nullptr) return;
    obs_->push_span(parent);
    obs_->event(clock_.now(), TraceEventKind::SpanStart, node_, object_, tx_,
                label_);
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// The context this guard opened (all-zero when tracing is off).
  [[nodiscard]] TraceContext context() const {
    return obs_ == nullptr ? TraceContext{} : obs_->current();
  }

  ~SpanGuard() {
    if (obs_ == nullptr) return;
    obs_->event(clock_.now(), TraceEventKind::SpanEnd, node_, object_, tx_,
                label_);
    obs_->pop_span();
  }

 private:
  Observability* obs_;
  const TimeSource& clock_;
  NodeId node_;
  ObjectId object_;
  TxId tx_;
  std::string label_;
};

}  // namespace dedisys::obs
