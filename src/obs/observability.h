// The per-cluster observability hub: trace recorder + latency registry.
//
// One Observability instance is owned by the Cluster and wired (as a raw
// pointer) into every service that emits events: the node kernel, the
// CCMgr, the transaction manager, the replication manager and the GMS.
// It is disabled by default so the hot paths pay exactly one predictable
// branch (`obs::on(obs_)`); enabling it costs no simulated time, so traced
// and untraced runs produce identical Chapter-5 numbers.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys::obs {

class Observability {
 public:
  [[nodiscard]] bool enabled() const { return enabled_; }

  void enable(std::size_t trace_capacity = 4096) {
    enabled_ = true;
    if (trace_.capacity() != trace_capacity) {
      trace_ = TraceRecorder(trace_capacity);
    }
  }

  void disable() { enabled_ = false; }

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] LatencyRegistry& latencies() { return latencies_; }
  [[nodiscard]] const LatencyRegistry& latencies() const { return latencies_; }

  /// Convenience recorder; callers must have checked enabled() already
  /// (via obs::on) so disabled clusters never build the strings below.
  void event(SimTime at, TraceEventKind kind, NodeId node = {},
             ObjectId object = {}, TxId tx = {}, std::string label = {},
             std::string detail = {}) {
    TraceEvent e;
    e.at = at;
    e.kind = kind;
    e.node = node;
    e.object = object;
    e.tx = tx;
    e.label = std::move(label);
    e.detail = std::move(detail);
    trace_.record(std::move(e));
  }

  void latency(const std::string& key, SimDuration d) {
    latencies_.record(key, d);
  }

 private:
  bool enabled_ = false;
  TraceRecorder trace_;
  LatencyRegistry latencies_;
};

/// The single-branch guard instrumentation sites use:
///   if (obs::on(obs_)) obs_->event(...);
[[nodiscard]] inline bool on(const Observability* o) {
  return o != nullptr && o->enabled();
}

}  // namespace dedisys::obs
