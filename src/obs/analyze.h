// Trace analysis: critical paths, per-phase latency attribution, mode
// timelines, and a trace-driven invariant checker.
//
// Everything here consumes only the recorded TraceEvent stream — no access
// to live cluster state — so the same code runs inside AdminConsole (the
// "spans" / "critical_path" blocks of metrics_json()), in the Prometheus
// servlet, and over an exported JSON trace in the tools/dedisys_trace CLI.
// That independence is the point of the invariant checker: it re-derives
// no-lost-threats and one-primary-per-partition purely from events, a
// second witness cross-checked against the chaos harness's state-based
// ground truth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys::obs {

/// Latency-attribution phase of a span, derived from its label:
/// "interception" (invoke/create/destroy), "validation", "2pc", "network"
/// (gcs.*), "replication" (replication.*), "reconciliation" (reconcile*).
[[nodiscard]] const char* phase_of(const std::string& span_label);

/// One hop of a trace's critical path (the chain of spans that bounds the
/// trace's end-to-end duration: from the root, always descend into the
/// child that finishes last).
struct CriticalHop {
  std::uint64_t span = 0;
  std::string label;
  NodeId node;
  SimTime start = 0;
  SimTime end = 0;
  SimDuration self_us = 0;  ///< hop duration minus the chosen child's
};

/// Per-trace digest: causal extent, phase attribution, critical path.
struct TraceSummary {
  std::uint64_t trace_id = 0;
  std::string root_label;
  NodeId root_node;
  SimTime start = 0;
  SimTime end = 0;
  SimDuration duration_us = 0;
  std::size_t spans = 0;
  std::size_t events = 0;  ///< ordinary (non-span-marker) events
  /// Self time (span duration minus child durations, clamped at 0) summed
  /// per phase; the phases partition the trace's busy time.
  std::map<std::string, SimDuration> phase_self_us;
  std::vector<CriticalHop> critical_path;
};

/// One mode.transition observation.
struct ModeSample {
  SimTime at = 0;
  NodeId node;
  std::string to;    ///< new mode ("healthy" / "degraded" / "reconciling")
  std::string from;
};

struct TraceAnalysis {
  std::vector<SpanTree> trees;       ///< one per trace, trace-id order
  std::vector<TraceSummary> traces;  ///< same order as `trees`
  std::vector<ModeSample> mode_timeline;
  /// Simulated time each node spent per mode, from its transitions to the
  /// last event stamp (nodes start "healthy" at the first event).
  std::map<std::uint64_t, std::map<std::string, SimDuration>> mode_residency;
  std::size_t traced_events = 0;   ///< events carrying a trace id
  std::size_t orphan_events = 0;   ///< events outside any span
};

/// Full analysis pass over a retained event stream (oldest first).
[[nodiscard]] TraceAnalysis analyze(const std::vector<TraceEvent>& events);

/// The `traces` entries sorted by descending duration (ties: trace id).
[[nodiscard]] std::vector<const TraceSummary*> slowest_traces(
    const TraceAnalysis& analysis, std::size_t top_k);

// -- trace-driven invariant checker -----------------------------------------

struct TraceCheckFinding {
  std::string invariant;  ///< "no-lost-threats" or "one-primary-per-partition"
  std::string detail;
};

struct TraceCheckResult {
  std::size_t reconciles = 0;       ///< reconcile windows examined
  std::size_t threats_tracked = 0;  ///< distinct accepted threat identities
  std::size_t view_checks = 0;      ///< quiescent view-agreement checks
  bool complete = true;  ///< false when the ring dropped events (verdict may
                         ///< miss violations whose evidence was dropped)
  std::vector<TraceCheckFinding> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Re-derives the dependability invariants from the event stream alone:
///
///   * no-lost-threats — every threat.accepted identity that was neither
///     resolved (threat.resolved, or its accepting transaction aborted)
///     nor previously reconciled away must reappear as a threat.reconciled
///     event inside every subsequent reconcile.start/reconcile.end window;
///   * one-primary-per-partition — whenever two nodes' installed views
///     mutually contain each other (they believe they share a partition)
///     their member sets must agree, otherwise the deterministic primary
///     election can elect two primaries inside one partition.
///
/// `dropped` (TraceRecorder::dropped()) marks the verdict incomplete when
/// the ring buffer overwrote part of the evidence.
[[nodiscard]] TraceCheckResult check_events(
    const std::vector<TraceEvent>& events, std::size_t dropped = 0);

// -- JSON surfaces ------------------------------------------------------------

/// Inverse of obs::to_json(TraceEvent) over a `{"events": [...]}` trace
/// block (or a bare event array): rebuilds the stream for offline analysis.
[[nodiscard]] std::vector<TraceEvent> events_from_json(const Json& doc);

/// The `"spans"` block: trace count, drop accounting, and the top-K
/// slowest traces with phase attribution.
[[nodiscard]] Json spans_to_json(const TraceAnalysis& analysis,
                                 std::size_t top_k = 5);

/// The `"critical_path"` block: hop list of the slowest trace (empty array
/// when nothing was traced).
[[nodiscard]] Json critical_path_to_json(const TraceAnalysis& analysis);

}  // namespace dedisys::obs
