// Structured event tracing: a bounded ring buffer of middleware events.
//
// Every layer of the invocation/threat/reconciliation pipeline can stamp
// events with the simulated clock: invocation spans through the
// interceptor chains, constraint validations with their satisfaction
// degree, the threat lifecycle (detected → negotiated → accepted/rejected
// → reconciled), 2PC prepare/commit/abort, view changes and mode
// transitions.  The recorder is a fixed-capacity ring buffer so tracing a
// long run costs constant memory; when full, the oldest events are
// overwritten and counted as dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys::obs {

/// Causal identity of a trace event: which end-to-end request (trace) it
/// belongs to, which unit of work (span) emitted it, and which span caused
/// that one.  Ids are minted by the Observability hub only while tracing is
/// enabled; 0 means "none".  Because the simulator delivers every
/// "network" message as a direct call inside the sender's stack, the
/// ambient span context propagates across nodes for free: a backup's apply
/// runs inside the primary's multicast and inherits its context.
struct TraceContext {
  std::uint64_t trace_id = 0;    ///< end-to-end request identity
  std::uint64_t span_id = 0;     ///< current unit of work
  std::uint64_t parent_span = 0; ///< span that caused this one (0 = root)

  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

enum class TraceEventKind {
  SpanStart,         ///< a causal span opened (label names its phase)
  SpanEnd,           ///< the span closed
  InvocationStart,   ///< a reified call enters the interceptor chain
  InvocationEnd,     ///< the call returned (or threw; see detail)
  Validation,        ///< one constraint validate() with its degree
  ValidationSkipped, ///< invariant skipped by static read-set pruning
  ValidationProven,  ///< invariant skipped: statically proven tautology
  ValidationMemoHit, ///< cached result reused (read-set stamps unchanged)
  ValidationMemoInvalidate, ///< cached result busted by a read-set write
  ThreatDetected,    ///< a threat arose (LCC/NCC outcome)
  ThreatNegotiated,  ///< negotiation ran (dynamic handler or static rule)
  ThreatAccepted,    ///< negotiation accepted the threat
  ThreatRejected,    ///< negotiation rejected; tx marked rollback-only
  ThreatReconciled,  ///< reconciliation re-evaluated a stored threat
  ThreatResolved,    ///< a stored threat was removed by a satisfied commit
  TxPrepare,         ///< 2PC phase 1 entered
  TxCommit,          ///< 2PC phase 2 completed
  TxAbort,           ///< transaction rolled back
  ViewChange,        ///< GMS installed a new view
  ModeTransition,    ///< node changed healthy/degraded/reconciling mode
  ReplicaPropagate,  ///< primary pushed an update to its backups
  ReconcileStart,    ///< cluster reconciliation began
  ReconcileEnd,      ///< cluster reconciliation finished
  NetworkSplit,      ///< partition injected
  NetworkHeal,       ///< all link failures repaired
  FaultInjected,     ///< the fault engine applied a scheduled fault action
  MsgRetried,        ///< GCS retransmitted a message after loss/ack loss
  MsgDeduped,        ///< a duplicate delivery was suppressed (idempotence)
  NodeRestarted,     ///< a crashed node rejoined and recovered its state
  AdmissionShed,     ///< the front door load-shed a request (reason in detail)
  AdmissionForward,  ///< a mis-routed request was forwarded to its shard home
};

[[nodiscard]] inline const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::SpanStart: return "span.start";
    case TraceEventKind::SpanEnd: return "span.end";
    case TraceEventKind::InvocationStart: return "invocation.start";
    case TraceEventKind::InvocationEnd: return "invocation.end";
    case TraceEventKind::Validation: return "validation";
    case TraceEventKind::ValidationSkipped: return "validation.skipped";
    case TraceEventKind::ValidationProven: return "validation.proven";
    case TraceEventKind::ValidationMemoHit: return "validation.memo_hit";
    case TraceEventKind::ValidationMemoInvalidate:
      return "validation.memo_invalidate";
    case TraceEventKind::ThreatDetected: return "threat.detected";
    case TraceEventKind::ThreatNegotiated: return "threat.negotiated";
    case TraceEventKind::ThreatAccepted: return "threat.accepted";
    case TraceEventKind::ThreatRejected: return "threat.rejected";
    case TraceEventKind::ThreatReconciled: return "threat.reconciled";
    case TraceEventKind::ThreatResolved: return "threat.resolved";
    case TraceEventKind::TxPrepare: return "tx.prepare";
    case TraceEventKind::TxCommit: return "tx.commit";
    case TraceEventKind::TxAbort: return "tx.abort";
    case TraceEventKind::ViewChange: return "view.change";
    case TraceEventKind::ModeTransition: return "mode.transition";
    case TraceEventKind::ReplicaPropagate: return "replica.propagate";
    case TraceEventKind::ReconcileStart: return "reconcile.start";
    case TraceEventKind::ReconcileEnd: return "reconcile.end";
    case TraceEventKind::NetworkSplit: return "network.split";
    case TraceEventKind::NetworkHeal: return "network.heal";
    case TraceEventKind::FaultInjected: return "fault.injected";
    case TraceEventKind::MsgRetried: return "msg.retried";
    case TraceEventKind::MsgDeduped: return "msg.deduped";
    case TraceEventKind::NodeRestarted: return "node.restarted";
    case TraceEventKind::AdmissionShed: return "admission.shed";
    case TraceEventKind::AdmissionForward: return "admission.forward";
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t seq = 0;  ///< monotonically increasing record number
  SimTime at = 0;         ///< simulated timestamp
  TraceEventKind kind = TraceEventKind::InvocationStart;
  NodeId node;            ///< node the event happened on (if any)
  ObjectId object;        ///< affected logical object (if any)
  TxId tx;                ///< surrounding transaction (if any)
  std::string label;      ///< method / constraint / view identifier
  std::string detail;     ///< outcome, degree, member list, ...
  std::uint64_t trace_id = 0;    ///< causal trace (0 = outside any trace)
  std::uint64_t span_id = 0;     ///< span that emitted the event
  std::uint64_t parent_span = 0; ///< parent of that span (0 = root)
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {
    buffer_.reserve(capacity_);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  /// Total events ever recorded (including dropped ones).
  [[nodiscard]] std::uint64_t recorded() const { return next_seq_; }

  void record(TraceEvent event) {
    event.seq = next_seq_++;
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(event));
      return;
    }
    buffer_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  /// The retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(buffer_.size());
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      out.push_back(buffer_[(head_ + i) % buffer_.size()]);
    }
    return out;
  }

  /// The retained events of one kind, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events_of(TraceEventKind kind) const {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e : events()) {
      if (e.kind == kind) out.push_back(e);
    }
    return out;
  }

  void clear() {
    buffer_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;  ///< index of the oldest event once the ring is full
  std::size_t dropped_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dedisys::obs
