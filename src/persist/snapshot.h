// Durable snapshots of record stores.
//
// The paper's middleware relies on database persistence to survive node
// pause-crashes: threats, replica metadata and entity state are durable.
// RecordStore is an in-memory substitute; these helpers give it an actual
// durability story — a length-prefixed text format that round-trips every
// Value type (including strings with arbitrary bytes) and fails loudly on
// corrupt input.
//
// Format (one logical line per item, '\n'-terminated):
//   table <len> <name>
//   record <len> <key> <field-count>
//   field <len> <name> <type> [payload]
// where <len> prefixes count bytes of the following token (which may
// contain spaces or newlines).
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "objects/value.h"
#include "persist/record_store.h"
#include "util/errors.h"

namespace dedisys {

namespace snapshot_detail {

inline void write_token(std::ostream& out, const std::string& token) {
  out << token.size() << ' ' << token;
}

inline std::string read_token(std::istream& in) {
  std::size_t len = 0;
  if (!(in >> len)) throw ConfigError("snapshot: expected token length");
  if (in.get() != ' ') throw ConfigError("snapshot: expected separator");
  std::string token(len, '\0');
  in.read(token.data(), static_cast<std::streamsize>(len));
  if (in.gcount() != static_cast<std::streamsize>(len)) {
    throw ConfigError("snapshot: truncated token");
  }
  return token;
}

inline void write_value(std::ostream& out, const Value& v) {
  struct Visitor {
    std::ostream& out;
    void operator()(std::monostate) const { out << "null"; }
    void operator()(bool b) const { out << "bool " << (b ? 1 : 0); }
    void operator()(std::int64_t i) const { out << "int " << i; }
    void operator()(double d) const {
      out.precision(17);
      out << "double " << d;
    }
    void operator()(const std::string& s) const {
      out << "string ";
      write_token(out, s);
    }
    void operator()(ObjectId id) const { out << "object " << id.value(); }
  };
  std::visit(Visitor{out}, v);
}

inline Value read_value(std::istream& in) {
  std::string type;
  if (!(in >> type)) throw ConfigError("snapshot: expected value type");
  if (type == "null") return Value{};
  if (type == "bool") {
    int b = 0;
    in >> b;
    return Value{b != 0};
  }
  if (type == "int") {
    std::int64_t i = 0;
    in >> i;
    return Value{i};
  }
  if (type == "double") {
    double d = 0;
    in >> d;
    return Value{d};
  }
  if (type == "string") {
    if (in.get() != ' ') throw ConfigError("snapshot: expected separator");
    return Value{read_token(in)};
  }
  if (type == "object") {
    std::uint64_t raw = 0;
    in >> raw;
    return Value{ObjectId{raw}};
  }
  throw ConfigError("snapshot: unknown value type " + type);
}

}  // namespace snapshot_detail

/// Writes every table of `store` to `out`.
inline void save_snapshot(const RecordStore& store, std::ostream& out) {
  using namespace snapshot_detail;
  for (const auto& [table, records] : store.tables()) {
    out << "table ";
    write_token(out, table);
    out << '\n';
    for (const auto& [key, record] : records) {
      out << "record ";
      write_token(out, key);
      out << ' ' << record.size() << '\n';
      for (const auto& [field, value] : record) {
        out << "field ";
        write_token(out, field);
        out << ' ';
        write_value(out, value);
        out << '\n';
      }
    }
  }
}

/// Rebuilds a store's content from a snapshot (replacing its tables).
/// Costs are NOT charged: recovery happens outside measured operation.
inline void load_snapshot(RecordStore& store, std::istream& in) {
  using namespace snapshot_detail;
  store.reset_tables();
  std::string item;
  std::string current_table;
  while (in >> item) {
    if (item == "table") {
      if (in.get() != ' ') throw ConfigError("snapshot: expected separator");
      current_table = read_token(in);
    } else if (item == "record") {
      if (current_table.empty()) {
        throw ConfigError("snapshot: record before table");
      }
      if (in.get() != ' ') throw ConfigError("snapshot: expected separator");
      const std::string key = read_token(in);
      std::size_t fields = 0;
      if (!(in >> fields)) throw ConfigError("snapshot: expected field count");
      AttributeMap record;
      for (std::size_t i = 0; i < fields; ++i) {
        std::string marker;
        if (!(in >> marker) || marker != "field") {
          throw ConfigError("snapshot: expected field entry");
        }
        if (in.get() != ' ') throw ConfigError("snapshot: expected separator");
        const std::string name = read_token(in);
        record[name] = read_value(in);
      }
      store.restore_record(current_table, key, std::move(record));
    } else {
      throw ConfigError("snapshot: unknown item " + item);
    }
  }
}

}  // namespace dedisys
