// Replica history store.
//
// During degraded mode the replication service persists intermediate
// replica states so that the reconciliation phase can attempt rollbacks to
// earlier, constraint-consistent states (Sections 3.3 and 4.3).  Keeping
// this history is the main cost of degraded-mode writes (Fig. 5.2) and the
// main driver of reconciliation time (Fig. 5.6); applications that do not
// need rollback disable it ("reduced history", Section 5.5.1).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "objects/entity.h"
#include "runtime/runtime.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

struct TimedSnapshot {
  SimTime when = 0;
  EntitySnapshot state;
};

class ReplicaHistoryStore {
 public:
  explicit ReplicaHistoryStore(Runtime& rt) : rt_(&rt) {}

  /// Persists one historical state (charged as a durable write).
  void append(const EntitySnapshot& state) {
    rt_->charge(rt_->cost().history_write);
    history_[state.id].push_back(TimedSnapshot{rt_->now(), state});
    ++total_;
  }

  [[nodiscard]] const std::vector<TimedSnapshot>& history(ObjectId id) const {
    static const std::vector<TimedSnapshot> kEmpty;
    auto it = history_.find(id);
    return it == history_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] bool has_history(ObjectId id) const {
    return history_.count(id) != 0;
  }

  void clear(ObjectId id) {
    auto it = history_.find(id);
    if (it != history_.end()) {
      total_ -= it->second.size();
      history_.erase(it);
    }
  }

  void clear_all() {
    history_.clear();
    total_ = 0;
  }

  [[nodiscard]] std::size_t total_entries() const { return total_; }

 private:
  Runtime* rt_;
  std::unordered_map<ObjectId, std::vector<TimedSnapshot>> history_;
  std::size_t total_ = 0;
};

}  // namespace dedisys
