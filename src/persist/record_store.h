// Persistence substrate (MySQL substitute).
//
// A per-node, table-oriented record store holding boxed attribute maps.
// Every durable operation charges the configured database cost against the
// virtual clock — these costs dominate the write path in Figures 5.1–5.4
// exactly as MySQL round-trips dominated them in the paper's testbed.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "objects/value.h"
#include "runtime/runtime.h"
#include "util/sim_clock.h"

namespace dedisys {

class RecordStore {
 public:
  explicit RecordStore(Runtime& rt) : rt_(&rt) {}

  /// Durable insert-or-update.
  void put(const std::string& table, const std::string& key,
           AttributeMap record) {
    rt_->charge(rt_->cost().db_write);
    tables_[table][key] = std::move(record);
    ++writes_;
  }

  /// Point read; nullopt when absent.
  [[nodiscard]] std::optional<AttributeMap> get(const std::string& table,
                                                const std::string& key) {
    rt_->charge(rt_->cost().db_read);
    ++reads_;
    auto t = tables_.find(table);
    if (t == tables_.end()) return std::nullopt;
    auto r = t->second.find(key);
    if (r == t->second.end()) return std::nullopt;
    return r->second;
  }

  /// Existence probe (cheaper than materializing the record in the paper's
  /// "identical threat already persisted" fast path — still one read).
  [[nodiscard]] bool contains(const std::string& table,
                              const std::string& key) {
    rt_->charge(rt_->cost().db_read);
    ++reads_;
    auto t = tables_.find(table);
    return t != tables_.end() && t->second.count(key) != 0;
  }

  /// Durable range delete of every key starting with `prefix` (one
  /// statement, e.g. DELETE ... WHERE key LIKE 'prefix%'); returns the
  /// number of records removed.
  std::size_t erase_prefix(const std::string& table,
                           const std::string& prefix) {
    rt_->charge(rt_->cost().db_delete);
    ++deletes_;
    auto t = tables_.find(table);
    if (t == tables_.end()) return 0;
    std::size_t removed = 0;
    auto it = t->second.lower_bound(prefix);
    while (it != t->second.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0) {
      it = t->second.erase(it);
      ++removed;
    }
    return removed;
  }

  /// Durable delete; returns whether a record existed.
  bool erase(const std::string& table, const std::string& key) {
    rt_->charge(rt_->cost().db_delete);
    ++deletes_;
    auto t = tables_.find(table);
    if (t == tables_.end()) return false;
    return t->second.erase(key) != 0;
  }

  /// Full scan of a table in key order (reconciliation reads all threats).
  [[nodiscard]] std::vector<std::pair<std::string, AttributeMap>> scan(
      const std::string& table) {
    std::vector<std::pair<std::string, AttributeMap>> out;
    auto t = tables_.find(table);
    if (t == tables_.end()) {
      rt_->charge(rt_->cost().db_read);
      ++reads_;
      return out;
    }
    for (const auto& [key, rec] : t->second) {
      rt_->charge(rt_->cost().db_read);
      ++reads_;
      out.emplace_back(key, rec);
    }
    return out;
  }

  [[nodiscard]] std::size_t count(const std::string& table) const {
    auto t = tables_.find(table);
    return t == tables_.end() ? 0 : t->second.size();
  }

  // -- snapshot support (durability, see persist/snapshot.h) ----------------

  /// Read-only view of every table (no cost charged; used by snapshots).
  [[nodiscard]] const std::map<std::string,
                               std::map<std::string, AttributeMap>>&
  tables() const {
    return tables_;
  }

  /// Drops all content (recovery replaces it from a snapshot).
  void reset_tables() { tables_.clear(); }

  /// Installs one record without charging costs (snapshot recovery).
  void restore_record(const std::string& table, const std::string& key,
                      AttributeMap record) {
    tables_[table][key] = std::move(record);
  }

  // -- statistics (observability for tests and benches) ---------------------
  [[nodiscard]] std::size_t write_count() const { return writes_; }
  [[nodiscard]] std::size_t read_count() const { return reads_; }
  [[nodiscard]] std::size_t delete_count() const { return deletes_; }

 private:
  Runtime* rt_;
  std::map<std::string, std::map<std::string, AttributeMap>> tables_;
  std::size_t writes_ = 0;
  std::size_t reads_ = 0;
  std::size_t deletes_ = 0;
};

}  // namespace dedisys
